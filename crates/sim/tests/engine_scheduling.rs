//! The activity-driven cycle loop must be an invisible optimization:
//! visiting only active switches/hosts has to produce exactly the run a
//! full every-component scan produces, and the event-jump fast path must
//! not interact badly with the deadlock watchdog.

use irrnet_sim::{
    McastId, SendSpec, SimConfig, Simulator, StaticProtocol, TraceLog,
};
use irrnet_topology::{
    generate, ApexPlan, Network, NodeId, NodeMask, RandomTopologyConfig,
};
use std::sync::Arc;

/// A seeded mixed workload on a random irregular network: staggered
/// unicasts plus tree-based multidestination worms, enough overlap to
/// exercise contention, blocked branches and queue growth.
fn mixed_sim(net: &Network, full_scan: bool) -> Simulator<'_, StaticProtocol> {
    let nh = net.topo.num_nodes();
    let mut proto = StaticProtocol::new();
    let mut schedule = Vec::new();
    for i in 0..24u32 {
        let id = McastId(u64::from(i));
        let src = NodeId(((i * 7) % nh as u32) as u16);
        let at = u64::from(i) * 97;
        if i % 3 == 0 {
            // Tree worm to a spread destination set.
            let mut dests = NodeMask::default();
            for k in 0..6u32 {
                let d = ((i * 5 + k * 11 + 1) % nh as u32) as u16;
                if NodeId(d) != src {
                    dests.insert(NodeId(d));
                }
            }
            let plan =
                Arc::new(ApexPlan::compute(&net.topo, &net.updown, &net.reach, dests));
            proto.set_launch(id, vec![(src, SendSpec::Tree { dests, plan })]);
            schedule.push((at, id, dests, 96u32));
        } else {
            let dest = NodeId(((i * 13 + 3) % nh as u32) as u16);
            if dest == src {
                continue;
            }
            proto.set_launch(id, vec![(src, SendSpec::Unicast { dest })]);
            schedule.push((at, id, NodeMask::single(dest), 96u32));
        }
    }
    let mut sim = Simulator::new(net, SimConfig::paper_default(), proto).unwrap();
    sim.set_full_scan(full_scan);
    for (at, id, dests, msg) in schedule {
        sim.schedule_multicast(at, id, dests, msg);
    }
    sim.enable_trace();
    sim
}

#[test]
fn active_lists_match_full_scan_for_10k_cycles() {
    let topo = generate(&RandomTopologyConfig::paper_default(42)).unwrap();
    let net = Network::analyze(topo).unwrap();

    let run = |full_scan: bool| -> (TraceLog, String) {
        let mut sim = mixed_sim(&net, full_scan);
        sim.run_until(10_000).unwrap();
        let trace = sim.take_trace().unwrap();
        let stats = sim.stats();
        // Records in registration order plus the aggregate counters; the
        // interning map itself is excluded (HashMap debug order is not
        // stable between instances).
        let rendered = format!(
            "{:?} {:?} {} {:?}",
            stats.mcasts.values().collect::<Vec<_>>(),
            stats.net,
            stats.cycles_run,
            stats.link_flits_per_dir,
        );
        (trace, rendered)
    };

    let (trace_active, stats_active) = run(false);
    let (trace_full, stats_full) = run(true);

    // Same lifecycle events at the same cycles, and identical final
    // statistics (flit counts, buffer peaks, per-mcast deliveries...).
    assert_eq!(trace_active.events(), trace_full.events());
    assert_eq!(stats_active, stats_full);
    // The workload genuinely ran (not a vacuous comparison).
    assert!(!trace_active.events().is_empty());
}

#[test]
fn host_overhead_gap_longer_than_watchdog_is_not_a_deadlock() {
    // The host-side send overhead dwarfs the watchdog window, so the
    // engine's clock reaches each injection through idle event-jumps.
    // `last_progress` must track those jumps: the post-gap network burst
    // would otherwise start with `now - last_progress` already past the
    // watchdog and a healthy run would be misreported as deadlocked.
    let topo = generate(&RandomTopologyConfig::paper_default(7)).unwrap();
    let net = Network::analyze(topo).unwrap();
    let nh = net.topo.num_nodes() as u32;
    let mut cfg = SimConfig::paper_default();
    cfg.o_send_host = 250_000; // ≫ watchdog
    cfg.watchdog_cycles = 5_000;

    let mut proto = StaticProtocol::new();
    let mut sim = {
        for i in 0..4u32 {
            let src = NodeId(((i * 9) % nh) as u16);
            let dest = NodeId(((i * 9 + 17) % nh) as u16);
            proto.set_launch(McastId(u64::from(i)), vec![(src, SendSpec::Unicast { dest })]);
        }
        Simulator::new(&net, cfg, proto).unwrap()
    };
    for i in 0..4u32 {
        let dest = NodeId(((i * 9 + 17) % nh) as u16);
        sim.schedule_multicast(u64::from(i) * 1_000, McastId(u64::from(i)), NodeMask::single(dest), 64);
    }
    let done = sim
        .run_to_completion(10_000_000)
        .expect("overhead gap misreported as deadlock");
    assert!(done > 250_000, "sends cannot complete before the host overhead elapses");
}
