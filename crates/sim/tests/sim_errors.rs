//! Error-path coverage: every `BadConfig` validation rule, `CycleLimit`,
//! forced deadlock (abort and recovery modes), and fault-driven
//! partitioning — the structured failures a degrading network must
//! produce instead of panics.

use irrnet_sim::{
    McastId, SendSpec, SimConfig, SimError, Simulator, StaticProtocol,
};
use irrnet_topology::{
    zoo, FaultEvent, FaultKind, FaultPlan, LinkId, Network, NodeId, NodeMask,
};

fn tiny_cfg() -> SimConfig {
    let mut c = SimConfig::paper_default();
    c.o_send_host = 10;
    c.o_recv_host = 10;
    c.o_send_ni = 10;
    c.o_recv_ni = 10;
    c
}

fn unicast_sim<'a>(
    net: &'a Network,
    cfg: SimConfig,
    from: NodeId,
    to: NodeId,
    msg: u32,
) -> Simulator<'a, StaticProtocol> {
    let mut proto = StaticProtocol::new();
    proto.set_launch(McastId(0), vec![(from, SendSpec::Unicast { dest: to })]);
    let mut sim = Simulator::new(net, cfg, proto).unwrap();
    sim.schedule_multicast(0, McastId(0), NodeMask::single(to), msg);
    sim
}

fn expect_bad_config(cfg: SimConfig, needle: &str) {
    let net = Network::analyze(zoo::chain(2).unwrap()).unwrap();
    match Simulator::new(&net, cfg, StaticProtocol::new()) {
        Err(SimError::BadConfig(msg)) => {
            assert!(msg.contains(needle), "message {msg:?} lacks {needle:?}")
        }
        other => panic!("expected BadConfig, got {:?}", other.err()),
    }
}

#[test]
fn bad_config_zero_packet() {
    let mut c = tiny_cfg();
    c.packet_payload_flits = 0;
    expect_bad_config(c, "packet size");
}

#[test]
fn bad_config_zero_bus_rate() {
    let mut a = tiny_cfg();
    a.io_bus_num = 0;
    expect_bad_config(a, "bus rate");
    let mut b = tiny_cfg();
    b.io_bus_den = 0;
    expect_bad_config(b, "bus rate");
}

#[test]
fn bad_config_buffer_smaller_than_worm() {
    let mut c = tiny_cfg();
    c.input_buffer_flits = c.packet_payload_flits + c.unicast_header_flits - 1;
    expect_bad_config(c, "input buffer");
}

#[test]
fn bad_config_zero_latency_channels() {
    let mut c = tiny_cfg();
    c.link_delay = 0;
    c.crossbar_delay = 0;
    expect_bad_config(c, "zero-latency");
}

#[test]
fn cycle_limit_reports_incomplete_count() {
    let net = Network::analyze(zoo::chain(2).unwrap()).unwrap();
    // A limit far below the software overheads: nothing can finish.
    let mut sim = unicast_sim(&net, SimConfig::paper_default(), NodeId(0), NodeId(1), 64);
    match sim.run_to_completion(10) {
        Err(SimError::CycleLimit { limit: 10, incomplete: 1 }) => {}
        other => panic!("expected CycleLimit, got {other:?}"),
    }
}

/// Jam the switch input buffer the worm must cross so it can never
/// advance; with recovery disabled the watchdog must abort with a
/// structured diagnostics snapshot of the stuck frame.
#[test]
fn forced_deadlock_aborts_with_diagnostics() {
    let net = Network::analyze(zoo::chain(2).unwrap()).unwrap();
    let mut cfg = tiny_cfg();
    cfg.watchdog_cycles = 2_000;
    cfg.watchdog_recovery_limit = 0;
    let mut sim = unicast_sim(&net, cfg, NodeId(0), NodeId(1), 64);
    let (s1, p1) = net.topo.link(LinkId(0)).end(1);
    sim.jam_input(s1, p1);
    match sim.run_until(10_000_000) {
        Err(SimError::Deadlock { at, diagnostics }) => {
            assert!(at > 0);
            assert_eq!(diagnostics.recoveries_used, 0);
            assert_eq!(diagnostics.stuck_frames.len(), 1, "{diagnostics}");
            let f = &diagnostics.stuck_frames[0];
            assert_eq!(f.mcast, McastId(0));
            // Stuck on the source-side switch, fully buffered, granted
            // toward the jammed port but unable to send a flit.
            assert!(f.decoded);
            assert_eq!(f.received, f.total);
            assert!(f.branches.iter().all(|b| b.sent == 0 && !b.done));
            // The rendered dump carries the same facts.
            let text = diagnostics.to_string();
            assert!(text.contains("recoveries_used=0"), "{text}");
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

/// Same jam, but with a recovery budget: the watchdog sacrifices the
/// stuck worm, the network drains, and the run ends cleanly with the
/// kill accounted in the counters.
#[test]
fn forced_deadlock_recovers_within_budget() {
    let net = Network::analyze(zoo::chain(2).unwrap()).unwrap();
    let mut cfg = tiny_cfg();
    cfg.watchdog_cycles = 2_000;
    cfg.watchdog_recovery_limit = 2;
    let mut sim = unicast_sim(&net, cfg, NodeId(0), NodeId(1), 64);
    let (s1, p1) = net.topo.link(LinkId(0)).end(1);
    sim.jam_input(s1, p1);
    sim.run_until(10_000_000).expect("recovery should unstick the run");
    let stats = sim.stats();
    assert_eq!(stats.net.watchdog_recoveries, 1);
    assert_eq!(stats.net.worms_killed, 1);
    assert!(stats.net.flits_dropped > 0);
    // The sacrificed worm's message was never delivered.
    assert!(stats.delivery_ratio() < 1.0);
}

/// Killing the only link of a chain partitions the survivors: the run
/// must end with the structured error, not a panic or a watchdog abort.
#[test]
fn partitioning_fault_is_a_structured_error() {
    let net = Network::analyze(zoo::chain(2).unwrap()).unwrap();
    let mut sim = unicast_sim(&net, tiny_cfg(), NodeId(0), NodeId(1), 64);
    let plan = FaultPlan::scheduled(vec![FaultEvent {
        at: 10,
        kind: FaultKind::Link(LinkId(0)),
    }]);
    sim.install_faults(&plan);
    match sim.run_until(10_000_000) {
        Err(SimError::Partitioned { at, cause }) => {
            assert_eq!(at, 10);
            let msg = cause.to_string();
            assert!(!msg.is_empty());
        }
        other => panic!("expected Partitioned, got {other:?}"),
    }
}

/// An empty fault plan must leave the run byte-identical to one without
/// fault support engaged at all.
#[test]
fn empty_fault_plan_changes_nothing() {
    let net = Network::analyze(zoo::chain(3).unwrap()).unwrap();
    let run = |install: bool| {
        let mut sim = unicast_sim(&net, tiny_cfg(), NodeId(0), NodeId(2), 128);
        if install {
            sim.install_faults(&FaultPlan::scheduled(Vec::new()));
        }
        sim.run_to_completion(10_000_000).unwrap();
        (sim.now(), sim.stats().net.clone())
    };
    assert_eq!(run(false), run(true));
}
