//! Up-phase guidance for tree-based multidestination worms.
//!
//! A tree-based worm "travel\[s\] adaptively to a least common ancestor
//! switch using links in the up direction" (§3.2.3) before fanning out
//! downward. In hardware each switch makes this decision locally: if the
//! union of its downward reachability strings covers the worm's header it
//! starts replicating; otherwise it forwards the worm out an up port.
//!
//! [`ApexPlan`] precomputes, for a given destination set, the same
//! information the distributed decision produces: for each switch the worm
//! could visit during its up phase, whether the switch covers the set and
//! which up ports lie on a **shortest** up-path to some covering switch.
//! The simulator then realizes the adaptivity (several candidate ports,
//! first-free wins) without re-deriving reachability per cycle.

use crate::graph::Topology;
use crate::ids::{PortIdx, SwitchId};
use crate::mask::NodeMask;
use crate::reach::Reachability;
use crate::updown::UpDown;
use std::collections::VecDeque;

/// Guidance for the up phase of one tree-based worm.
#[derive(Debug, Clone)]
pub struct ApexPlan {
    /// The destination set the plan was computed for.
    pub dests: NodeMask,
    /// `up_dist[s]` — minimal number of up traversals from `s` to a switch
    /// covering `dests` (0 if `s` itself covers); `u16::MAX` if none (can
    /// only happen for an empty up component, impossible in a connected
    /// up*/down* network because the root covers everything).
    up_dist: Vec<u16>,
    /// `up_ports[s]` — the up output ports of `s` on shortest up-paths to
    /// a covering switch. Empty iff `up_dist[s] == 0`.
    up_ports: Vec<Vec<PortIdx>>,
}

impl ApexPlan {
    /// Build the plan for `dests` on the analyzed network.
    pub fn compute(
        topo: &Topology,
        updown: &UpDown,
        reach: &Reachability,
        dests: NodeMask,
    ) -> Self {
        let n = topo.num_switches();
        let mut up_dist = vec![u16::MAX; n];
        let mut q = VecDeque::new();
        // Multi-source backward BFS over *up* edges: sources are covering
        // switches. We need distances along up traversals from s toward a
        // covering switch, i.e. BFS from covering switches along *reversed*
        // up edges (which are down traversals).
        for (s, d) in up_dist.iter_mut().enumerate() {
            if reach.covers(SwitchId(s as u16), &dests) {
                *d = 0;
                q.push_back(s);
            }
        }
        while let Some(s) = q.pop_front() {
            let d = up_dist[s];
            // Predecessors: switches p with an up traversal p -> s, i.e.
            // the down links of s lead to exactly those p.
            for (_, peer, _) in updown.down_links(topo, SwitchId(s as u16)) {
                let pi = peer.idx();
                if up_dist[pi] == u16::MAX {
                    up_dist[pi] = d + 1;
                    q.push_back(pi);
                }
            }
        }
        let mut up_ports = vec![Vec::new(); n];
        for s in 0..n {
            let d = up_dist[s];
            if d == 0 || d == u16::MAX {
                continue;
            }
            let sid = SwitchId(s as u16);
            for (_, peer, port) in updown.up_links(topo, sid) {
                if up_dist[peer.idx()] + 1 == d {
                    up_ports[s].push(port);
                }
            }
            debug_assert!(!up_ports[s].is_empty(), "no minimal up port despite finite dist");
        }
        ApexPlan { dests, up_dist, up_ports }
    }

    /// True if `s` covers the destination set (the worm turns downward).
    #[inline]
    pub fn covered_at(&self, s: SwitchId) -> bool {
        self.up_dist[s.idx()] == 0
    }

    /// Minimal up traversals from `s` to a covering switch.
    #[inline]
    pub fn up_distance(&self, s: SwitchId) -> u16 {
        self.up_dist[s.idx()]
    }

    /// Candidate up ports at `s` (empty iff covered at `s`).
    #[inline]
    pub fn up_ports(&self, s: SwitchId) -> &[PortIdx] {
        &self.up_ports[s.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TopologyBuilder;
    use crate::ids::NodeId;

    /// Chain with a fork:  S0 - S1 - S2, S1 - S3.  Hosts: one per switch.
    fn fixture() -> (Topology, UpDown, Reachability) {
        let mut b = TopologyBuilder::new();
        let s: Vec<_> = (0..4).map(|_| b.add_switch(8)).collect();
        b.add_link(s[0], s[1]).unwrap();
        b.add_link(s[1], s[2]).unwrap();
        b.add_link(s[1], s[3]).unwrap();
        for &sw in &s {
            b.add_host(sw).unwrap();
        }
        let t = b.build().unwrap();
        let ud = UpDown::compute(&t, s[0]).unwrap();
        let r = Reachability::compute(&t, &ud).unwrap();
        (t, ud, r)
    }

    #[test]
    fn local_destination_needs_no_climb() {
        let (t, ud, r) = fixture();
        let plan = ApexPlan::compute(&t, &ud, &r, NodeMask::single(NodeId(2)));
        assert!(plan.covered_at(SwitchId(2)));
        assert_eq!(plan.up_distance(SwitchId(2)), 0);
        assert!(plan.up_ports(SwitchId(2)).is_empty());
    }

    #[test]
    fn sibling_destinations_meet_at_common_ancestor() {
        let (t, ud, r) = fixture();
        // n2 (at S2) and n3 (at S3): S1 is the lowest covering switch.
        let dests = NodeMask::from_nodes([NodeId(2), NodeId(3)]);
        let plan = ApexPlan::compute(&t, &ud, &r, dests);
        assert!(plan.covered_at(SwitchId(1)));
        assert!(plan.covered_at(SwitchId(0)));
        assert!(!plan.covered_at(SwitchId(2)));
        assert_eq!(plan.up_distance(SwitchId(2)), 1);
        assert_eq!(plan.up_ports(SwitchId(2)).len(), 1);
    }

    #[test]
    fn climb_distance_accumulates() {
        let (t, ud, r) = fixture();
        // Destination n0 (at the root's switch): from S2 the worm must
        // climb S2 -> S1 -> S0.
        let plan = ApexPlan::compute(&t, &ud, &r, NodeMask::single(NodeId(0)));
        assert_eq!(plan.up_distance(SwitchId(2)), 2);
        assert_eq!(plan.up_distance(SwitchId(1)), 1);
        assert!(plan.covered_at(SwitchId(0)));
    }

    #[test]
    fn every_switch_has_finite_distance() {
        let (t, ud, r) = fixture();
        let plan = ApexPlan::compute(&t, &ud, &r, NodeMask::all(t.num_nodes()));
        for (s, _) in t.switches() {
            assert_ne!(plan.up_distance(s), u16::MAX);
        }
    }
}
