//! Imperative construction of topologies for tests, fixtures, and the
//! random generator.

use crate::error::TopologyError;
use crate::graph::{HostAttachment, Link, PortUse, Switch, Topology};
use crate::ids::{LinkId, NodeId, PortIdx, SwitchId};

/// Builds a [`Topology`] one switch / host / link at a time, assigning
/// ports automatically (lowest free port first, which mirrors the paper's
/// figures where host ports precede link ports).
#[derive(Debug, Default, Clone)]
pub struct TopologyBuilder {
    switches: Vec<Switch>,
    links: Vec<Link>,
    hosts: Vec<HostAttachment>,
}

impl TopologyBuilder {
    /// Fresh empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a switch with `ports` ports; returns its id.
    pub fn add_switch(&mut self, ports: u8) -> SwitchId {
        let id = SwitchId(self.switches.len() as u16);
        self.switches.push(Switch { ports: vec![PortUse::Open; ports as usize] });
        id
    }

    /// Attach a new host to `s` on its lowest free port.
    pub fn add_host(&mut self, s: SwitchId) -> Result<NodeId, TopologyError> {
        let node = NodeId(self.hosts.len() as u16);
        let port = self.take_free_port(s)?;
        self.switches[s.idx()].ports[port.idx()] = PortUse::Host(node);
        self.hosts.push(HostAttachment { switch: s, port });
        Ok(node)
    }

    /// Connect two distinct switches with a new bidirectional link, using
    /// the lowest free port on each side. Parallel links are allowed.
    pub fn add_link(&mut self, s1: SwitchId, s2: SwitchId) -> Result<LinkId, TopologyError> {
        if s1 == s2 {
            return Err(TopologyError::SelfLink(s1));
        }
        let p1 = self.take_free_port(s1)?;
        let p2 = self.take_free_port(s2)?;
        let link = LinkId(self.links.len() as u32);
        self.switches[s1.idx()].ports[p1.idx()] = PortUse::Link { link, side: 0 };
        self.switches[s2.idx()].ports[p2.idx()] = PortUse::Link { link, side: 1 };
        self.links.push(Link { a: (s1, p1), b: (s2, p2) });
        Ok(link)
    }

    /// Number of free ports remaining on `s`.
    pub fn free_ports(&self, s: SwitchId) -> usize {
        self.switches[s.idx()].free_ports().count()
    }

    /// Total free ports across all switches.
    pub fn total_free_ports(&self) -> usize {
        (0..self.switches.len())
            .map(|i| self.free_ports(SwitchId(i as u16)))
            .sum()
    }

    /// Number of switches added so far.
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Finish and validate.
    pub fn build(self) -> Result<Topology, TopologyError> {
        Topology::from_parts(self.switches, self.links, self.hosts)
    }

    fn take_free_port(&mut self, s: SwitchId) -> Result<PortIdx, TopologyError> {
        let sw = self
            .switches
            .get(s.idx())
            .ok_or(TopologyError::Inconsistent("switch id out of range"))?;
        sw.free_ports().next().ok_or(TopologyError::NoFreePort(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_fill_lowest_first() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch(3);
        let s1 = b.add_switch(3);
        let n0 = b.add_host(s0).unwrap();
        b.add_link(s0, s1).unwrap();
        let t = {
            b.add_host(s1).unwrap();
            b.build().unwrap()
        };
        assert_eq!(t.host_port(n0), PortIdx(0));
        // link took port 1 on s0
        assert!(matches!(t.switch(s0).ports[1], PortUse::Link { .. }));
        assert!(matches!(t.switch(s0).ports[2], PortUse::Open));
    }

    #[test]
    fn port_exhaustion_errors() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch(1);
        b.add_host(s0).unwrap();
        assert_eq!(b.add_host(s0), Err(TopologyError::NoFreePort(s0)));
    }

    #[test]
    fn self_link_rejected() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch(4);
        assert_eq!(b.add_link(s0, s0), Err(TopologyError::SelfLink(s0)));
    }

    #[test]
    fn free_port_accounting() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch(8);
        let s1 = b.add_switch(8);
        assert_eq!(b.total_free_ports(), 16);
        b.add_link(s0, s1).unwrap();
        assert_eq!(b.total_free_ports(), 14);
        b.add_host(s0).unwrap();
        assert_eq!(b.free_ports(s0), 6);
    }
}
