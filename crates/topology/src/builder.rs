//! Imperative construction of topologies for tests, fixtures, and the
//! random generator.
//!
//! Port assignment and free-port accounting are incremental: each switch
//! keeps a monotone next-free cursor (ports are taken, never released)
//! and a free-port count, so [`TopologyBuilder::free_ports`] is O(1) and
//! taking a port is amortized O(1). The random generator leans on this —
//! at 1000 switches / 10k hosts the old per-query port rescans dominated
//! generation time.

use crate::error::TopologyError;
use crate::graph::{HostAttachment, Link, PortUse, Switch, Topology};
use crate::ids::{LinkId, NodeId, PortIdx, SwitchId};

/// Builds a [`Topology`] one switch / host / link at a time, assigning
/// ports automatically (lowest free port first, which mirrors the paper's
/// figures where host ports precede link ports).
#[derive(Debug, Default, Clone)]
pub struct TopologyBuilder {
    switches: Vec<Switch>,
    links: Vec<Link>,
    hosts: Vec<HostAttachment>,
    /// Free ports per switch (incremental; ports are never released).
    free_count: Vec<u16>,
    /// Lowest port index that might still be open, per switch.
    next_free: Vec<u16>,
    /// Sum of `free_count`.
    total_free: usize,
}

impl TopologyBuilder {
    /// Fresh empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a switch with `ports` ports; returns its id.
    pub fn add_switch(&mut self, ports: u8) -> SwitchId {
        let id = SwitchId::try_new(self.switches.len())
            .expect("switch count exceeds the u16 SwitchId space");
        self.switches.push(Switch { ports: vec![PortUse::Open; ports as usize] });
        self.free_count.push(ports as u16);
        self.next_free.push(0);
        self.total_free += ports as usize;
        id
    }

    /// Attach a new host to `s` on its lowest free port.
    pub fn add_host(&mut self, s: SwitchId) -> Result<NodeId, TopologyError> {
        let node = NodeId::try_new(self.hosts.len())
            .map_err(|_| TopologyError::TooManyNodes(self.hosts.len() + 1))?;
        let port = self.take_free_port(s)?;
        self.switches[s.idx()].ports[port.idx()] = PortUse::Host(node);
        self.hosts.push(HostAttachment { switch: s, port });
        Ok(node)
    }

    /// Connect two distinct switches with a new bidirectional link, using
    /// the lowest free port on each side. Parallel links are allowed.
    pub fn add_link(&mut self, s1: SwitchId, s2: SwitchId) -> Result<LinkId, TopologyError> {
        if s1 == s2 {
            return Err(TopologyError::SelfLink(s1));
        }
        let p1 = self.take_free_port(s1)?;
        let p2 = self.take_free_port(s2)?;
        let link = LinkId::try_new(self.links.len())
            .expect("link count exceeds the u32 LinkId space");
        self.switches[s1.idx()].ports[p1.idx()] = PortUse::Link { link, side: 0 };
        self.switches[s2.idx()].ports[p2.idx()] = PortUse::Link { link, side: 1 };
        self.links.push(Link { a: (s1, p1), b: (s2, p2) });
        Ok(link)
    }

    /// Number of free ports remaining on `s` (O(1)).
    pub fn free_ports(&self, s: SwitchId) -> usize {
        self.free_count[s.idx()] as usize
    }

    /// Total free ports across all switches (O(1)).
    pub fn total_free_ports(&self) -> usize {
        self.total_free
    }

    /// Number of switches added so far.
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Number of hosts added so far.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Finish and validate.
    pub fn build(self) -> Result<Topology, TopologyError> {
        Topology::from_parts(self.switches, self.links, self.hosts)
    }

    fn take_free_port(&mut self, s: SwitchId) -> Result<PortIdx, TopologyError> {
        let si = s.idx();
        if si >= self.switches.len() {
            return Err(TopologyError::Inconsistent("switch id out of range"));
        }
        if self.free_count[si] == 0 {
            return Err(TopologyError::NoFreePort(s));
        }
        // Ports are never released, so the cursor only ever advances:
        // the total scan work per switch is O(ports) over its lifetime.
        let ports = &self.switches[si].ports;
        let mut p = self.next_free[si] as usize;
        while !matches!(ports[p], PortUse::Open) {
            p += 1;
        }
        self.free_count[si] -= 1;
        self.total_free -= 1;
        self.next_free[si] = (p + 1) as u16;
        Ok(PortIdx(p as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_fill_lowest_first() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch(3);
        let s1 = b.add_switch(3);
        let n0 = b.add_host(s0).unwrap();
        b.add_link(s0, s1).unwrap();
        let t = {
            b.add_host(s1).unwrap();
            b.build().unwrap()
        };
        assert_eq!(t.host_port(n0), PortIdx(0));
        // link took port 1 on s0
        assert!(matches!(t.switch(s0).ports[1], PortUse::Link { .. }));
        assert!(matches!(t.switch(s0).ports[2], PortUse::Open));
    }

    #[test]
    fn port_exhaustion_errors() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch(1);
        b.add_host(s0).unwrap();
        assert_eq!(b.add_host(s0), Err(TopologyError::NoFreePort(s0)));
    }

    #[test]
    fn self_link_rejected() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch(4);
        assert_eq!(b.add_link(s0, s0), Err(TopologyError::SelfLink(s0)));
    }

    #[test]
    fn node_ceiling_fails_cleanly() {
        // Fill the entire u16 NodeId space, then one more: the 65537th
        // host must fail with a typed error, not wrap around to node 0.
        let mut b = TopologyBuilder::new();
        let switches: Vec<_> = (0..258).map(|_| b.add_switch(255)).collect();
        for i in 0..Topology::MAX_NODES {
            b.add_host(switches[i / 255]).unwrap();
        }
        assert_eq!(b.num_hosts(), Topology::MAX_NODES);
        assert_eq!(
            b.add_host(switches[256]),
            Err(TopologyError::TooManyNodes(Topology::MAX_NODES + 1))
        );
    }

    #[test]
    fn free_port_accounting() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch(8);
        let s1 = b.add_switch(8);
        assert_eq!(b.total_free_ports(), 16);
        b.add_link(s0, s1).unwrap();
        assert_eq!(b.total_free_ports(), 14);
        b.add_host(s0).unwrap();
        assert_eq!(b.free_ports(s0), 6);
        assert_eq!(b.free_ports(s1), 7);
        assert_eq!(b.num_hosts(), 1);
    }
}
