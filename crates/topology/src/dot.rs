//! Graphviz export for debugging and documentation.

use crate::graph::Topology;
use crate::updown::UpDown;
use std::fmt::Write as _;

/// Render the topology as a Graphviz `graph`, with BFS levels as ranks and
/// up/down orientation drawn as arrowheads toward the up end.
pub fn to_dot(topo: &Topology, updown: Option<&UpDown>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph irrnet {{");
    let _ = writeln!(out, "  node [shape=box];");
    for (s, _) in topo.switches() {
        let label = match updown {
            Some(ud) => format!("{s}\\nlvl {}", ud.level(s)),
            None => format!("{s}"),
        };
        let _ = writeln!(out, "  {} [label=\"{}\"];", s.0, label);
    }
    for (n, h) in topo.hosts() {
        let _ = writeln!(out, "  h{} [label=\"{n}\", shape=ellipse];", n.0);
        let _ = writeln!(out, "  {} -- h{};", h.switch.0, n.0);
    }
    for (li, l) in topo.links() {
        match updown {
            Some(ud) => {
                // Draw with an arrowhead at the up end.
                let up = l.end(ud.up_side(li)).0;
                let down = l.end(1 - ud.up_side(li)).0;
                let _ = writeln!(
                    out,
                    "  {} -- {} [dir=forward, label=\"{li}\"];",
                    down.0, up.0
                );
            }
            None => {
                let _ = writeln!(out, "  {} -- {} [label=\"{li}\"];", l.a.0.0, l.b.0.0);
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use crate::Network;

    #[test]
    fn renders_all_elements() {
        let net = Network::analyze(zoo::chain(3).unwrap()).unwrap();
        let dot = to_dot(&net.topo, Some(&net.updown));
        assert!(dot.contains("graph irrnet"));
        assert!(dot.contains("S0"));
        assert!(dot.contains("h0"));
        assert!(dot.contains("lvl 0"));
        // 2 links in a 3-chain
        assert_eq!(dot.matches("dir=forward").count(), 2);
    }

    #[test]
    fn renders_without_updown() {
        let dot = to_dot(&zoo::chain(2).unwrap(), None);
        assert!(dot.contains("S1"));
        assert!(!dot.contains("lvl"));
    }
}
