//! Disjoint-set union (union-find) with path halving and union by size.
//!
//! Connectivity questions over the switch graph — topology validation,
//! incremental connectivity while generating giant random topologies —
//! were previously answered by whole-graph DFS scans. At 1000 switches
//! those rescans dominate construction; the DSU answers the same
//! questions in amortized O(α) per operation.

/// A disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct Dsu {
    /// Parent pointer per element; roots point at themselves.
    parent: Vec<u32>,
    /// Component size, valid at roots only.
    size: Vec<u32>,
    /// Number of distinct components.
    components: usize,
}

impl Dsu {
    /// `n` singleton components.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "DSU element space exceeds u32");
        Dsu {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Root of `x`'s component, with path halving.
    pub fn find(&mut self, mut x: usize) -> usize {
        loop {
            let p = self.parent[x] as usize;
            if p == x {
                return x;
            }
            let gp = self.parent[p];
            self.parent[x] = gp;
            x = gp as usize;
        }
    }

    /// Merge the components of `a` and `b`; returns true if they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// True if `a` and `b` are in the same component.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of distinct components.
    #[inline]
    pub fn components(&self) -> usize {
        self.components
    }

    /// Lowest element not in `anchor`'s component, if any — the
    /// "first unreachable switch" a connectivity check reports.
    pub fn first_outside_component_of(&mut self, anchor: usize) -> Option<usize> {
        if self.parent.is_empty() || self.components == 1 {
            return None;
        }
        let root = self.find(anchor);
        (0..self.parent.len()).find(|&i| self.find(i) != root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut d = Dsu::new(5);
        assert_eq!(d.components(), 5);
        assert!(d.union(0, 1));
        assert!(d.union(3, 4));
        assert!(!d.union(1, 0), "repeated union is a no-op");
        assert_eq!(d.components(), 3);
        assert!(d.connected(0, 1));
        assert!(!d.connected(0, 3));
        assert_eq!(d.first_outside_component_of(0), Some(2));
        d.union(0, 2);
        d.union(2, 3);
        assert_eq!(d.components(), 1);
        assert_eq!(d.first_outside_component_of(0), None);
    }

    #[test]
    fn first_outside_reports_lowest_id() {
        let mut d = Dsu::new(4);
        d.union(0, 3);
        assert_eq!(d.first_outside_component_of(0), Some(1));
        assert_eq!(d.first_outside_component_of(1), Some(0));
    }

    #[test]
    fn empty_and_single_are_connected() {
        assert_eq!(Dsu::new(0).first_outside_component_of(0), None);
        assert_eq!(Dsu::new(1).first_outside_component_of(0), None);
    }
}
