//! Error type for topology construction and analysis.

use crate::ids::{NodeId, SwitchId};
use std::fmt;

/// Everything that can go wrong while building or analyzing a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The switch graph is not connected — the paper's only structural
    /// guarantee is that it is, so everything downstream requires it.
    Disconnected {
        /// A switch unreachable from switch 0.
        unreachable: SwitchId,
    },
    /// A switch ran out of ports while adding a host or link.
    NoFreePort(SwitchId),
    /// A port was referenced that the switch does not have.
    BadPort {
        switch: SwitchId,
        port: u8,
        ports_per_switch: u8,
    },
    /// A link connects a switch to itself, which Autonet disallows.
    SelfLink(SwitchId),
    /// The topology has no switches or no hosts.
    Empty,
    /// More nodes than the `u16` [`NodeId`] space supports
    /// ([`crate::Topology::MAX_NODES`]).
    TooManyNodes(usize),
    /// A host id is attached to a nonexistent switch.
    DanglingHost { node: NodeId, switch: SwitchId },
    /// The requested configuration cannot fit: not enough ports for the
    /// requested hosts plus links.
    InsufficientPorts {
        needed: usize,
        available: usize,
    },
    /// The spanning-tree root is not a switch of this topology.
    BadRoot(SwitchId),
    /// Faults have split the network: some surviving switches (and the
    /// hosts attached to them) can no longer reach the rest. Produced by
    /// [`crate::Network::degrade`] instead of silently building routing
    /// tables with unreachable destinations.
    PartitionedNetwork {
        /// Surviving switches unreachable from the re-elected root.
        unreachable_switches: Vec<SwitchId>,
        /// Alive hosts stranded on those switches.
        unreachable_hosts: Vec<NodeId>,
    },
    /// Internal consistency failure (a bug if it ever fires).
    Inconsistent(&'static str),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Disconnected { unreachable } => {
                write!(f, "network is not connected: {unreachable} unreachable from S0")
            }
            TopologyError::NoFreePort(s) => write!(f, "no free port left on {s}"),
            TopologyError::BadPort { switch, port, ports_per_switch } => write!(
                f,
                "port p{port} out of range on {switch} (switch has {ports_per_switch} ports)"
            ),
            TopologyError::SelfLink(s) => write!(f, "self-link on {s} is not allowed"),
            TopologyError::Empty => write!(f, "topology must have at least one switch and one host"),
            TopologyError::TooManyNodes(n) => {
                write!(f, "{n} nodes exceed the u16 NodeId ceiling of 65536")
            }
            TopologyError::DanglingHost { node, switch } => {
                write!(f, "host {node} attached to nonexistent {switch}")
            }
            TopologyError::InsufficientPorts { needed, available } => write!(
                f,
                "configuration needs {needed} switch ports but only {available} exist"
            ),
            TopologyError::BadRoot(s) => write!(f, "spanning-tree root {s} is not a switch"),
            TopologyError::PartitionedNetwork { unreachable_switches, unreachable_hosts } => {
                write!(
                    f,
                    "faults partitioned the network: {} surviving switch(es) and {} host(s) \
                     unreachable from the re-elected root",
                    unreachable_switches.len(),
                    unreachable_hosts.len()
                )
            }
            TopologyError::Inconsistent(what) => write!(f, "internal inconsistency: {what}"),
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TopologyError::Disconnected { unreachable: SwitchId(4) };
        assert!(e.to_string().contains("S4"));
        let e = TopologyError::InsufficientPorts { needed: 70, available: 64 };
        assert!(e.to_string().contains("70"));
        assert!(e.to_string().contains("64"));
    }
}
