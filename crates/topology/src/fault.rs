//! Fault plans and the live up/down status of a degrading network.
//!
//! Autonet's up*/down* routing exists precisely because irregular NOWs
//! lose links and switches at runtime and must re-orient the surviving
//! graph (§2.2 of the paper cites reconfiguration-after-failure as the
//! scheme's motivation). This module provides the *what dies and when*
//! half of that story:
//!
//! * [`FaultStatus`] — the cumulative alive/dead state of every link and
//!   switch, with host liveness derived (a host dies with its switch);
//! * [`FaultPlan`] — a deterministic schedule of [`FaultEvent`]s, either
//!   hand-written or drawn from the in-tree xoshiro PRNG with victims
//!   restricted to those whose death keeps the surviving switch graph
//!   connected (partitions are exercised deliberately, not by accident);
//! * masked re-analysis entry point: [`crate::Network::degrade`] rebuilds
//!   the spanning tree, routing tables, and reachability strings over the
//!   surviving graph, returning
//!   [`crate::TopologyError::PartitionedNetwork`] when alive hosts became
//!   unreachable.
//!
//! Everything is a pure function of `(topology, plan, seed)` — no global
//! state, no wall-clock — so fault runs stay byte-deterministic.

use crate::graph::Topology;
use crate::ids::{LinkId, NodeId, SwitchId};
use crate::rng::SmallRng;

/// What dies in one fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// One bidirectional inter-switch link goes down (both directions).
    Link(LinkId),
    /// A whole switch goes down: all its links and attached hosts die
    /// with it.
    Switch(SwitchId),
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulation cycle at which the component dies.
    pub at: u64,
    /// The dying component.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults, sorted by cycle.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// Parameters for [`FaultPlan::random`].
#[derive(Debug, Clone)]
pub struct RandomFaultConfig {
    /// Total components to kill.
    pub kills: usize,
    /// Every `switch_every`-th kill (1-based) is a whole switch; `0`
    /// means links only.
    pub switch_every: usize,
    /// Half-open cycle window `[start, end)` the kill times are spread
    /// evenly across.
    pub window: (u64, u64),
    /// PRNG seed for victim selection.
    pub seed: u64,
    /// Switches that must survive (e.g. the switches of traffic
    /// sources); they are also never isolated by link kills.
    pub protect: Vec<SwitchId>,
}

impl FaultPlan {
    /// A plan from explicit events (sorted by cycle, stably).
    pub fn scheduled(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }

    /// The scheduled events in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True if nothing is scheduled to die.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Draw a connectivity-preserving plan: victims are chosen with the
    /// seeded xoshiro PRNG, but a candidate is only accepted if the
    /// surviving switch graph stays connected after its death (and every
    /// protected switch survives). Kill times are spread evenly across
    /// the window. When no safe victim of the preferred kind exists (the
    /// survivors form a tree, so every link is a bridge) the other kind
    /// is tried; only when neither qualifies does the plan come up short.
    pub fn random(topo: &Topology, cfg: &RandomFaultConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut status = FaultStatus::healthy(topo);
        let mut events = Vec::new();
        let (start, end) = cfg.window;
        let span = end.saturating_sub(start).max(1);
        for i in 0..cfg.kills {
            let want_switch = cfg.switch_every != 0 && (i + 1) % cfg.switch_every == 0;
            let kind = match status
                .pick_safe_victim(topo, &mut rng, want_switch, &cfg.protect)
                .or_else(|| status.pick_safe_victim(topo, &mut rng, !want_switch, &cfg.protect))
            {
                Some(k) => k,
                None => break,
            };
            status.kill(topo, kind);
            let at = start + span * (i as u64 + 1) / (cfg.kills as u64 + 1);
            events.push(FaultEvent { at, kind });
        }
        FaultPlan::scheduled(events)
    }
}

/// Cumulative alive/dead state of a degrading network. Host liveness is
/// derived: a host is up iff its switch is up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultStatus {
    link_up: Vec<bool>,
    switch_up: Vec<bool>,
}

impl FaultStatus {
    /// Everything alive.
    pub fn healthy(topo: &Topology) -> Self {
        FaultStatus {
            link_up: vec![true; topo.num_links()],
            switch_up: vec![true; topo.num_switches()],
        }
    }

    /// True if the link itself is up **and** both endpoint switches are.
    #[inline]
    pub fn link_up(&self, topo: &Topology, l: LinkId) -> bool {
        if !self.link_up[l.idx()] {
            return false;
        }
        let link = topo.link(l);
        self.switch_up[link.a.0.idx()] && self.switch_up[link.b.0.idx()]
    }

    /// True if the switch is up.
    #[inline]
    pub fn switch_up(&self, s: SwitchId) -> bool {
        self.switch_up[s.idx()]
    }

    /// True if the host is up (its switch is up).
    #[inline]
    pub fn host_up(&self, topo: &Topology, n: NodeId) -> bool {
        self.switch_up[topo.host_switch(n).idx()]
    }

    /// True if no component has died yet.
    pub fn is_healthy(&self) -> bool {
        self.link_up.iter().all(|&u| u) && self.switch_up.iter().all(|&u| u)
    }

    /// Apply one fault. Returns the links and switches that *newly* died
    /// (a switch kill reports the switch plus every previously-alive link
    /// touching it), in ascending id order. Repeated kills are no-ops.
    pub fn kill(&mut self, topo: &Topology, kind: FaultKind) -> (Vec<LinkId>, Vec<SwitchId>) {
        let mut dead_links = Vec::new();
        let mut dead_switches = Vec::new();
        match kind {
            FaultKind::Link(l) => {
                if self.link_up(topo, l) {
                    dead_links.push(l);
                }
                self.link_up[l.idx()] = false;
            }
            FaultKind::Switch(s) => {
                if self.switch_up[s.idx()] {
                    dead_switches.push(s);
                    self.switch_up[s.idx()] = false;
                    // Report links that were carrying traffic until this
                    // kill: structurally up with the other endpoint alive.
                    for (li, link) in topo.links() {
                        if (link.a.0 == s || link.b.0 == s) && self.link_up[li.idx()] {
                            let other = if link.a.0 == s { link.b.0 } else { link.a.0 };
                            if self.switch_up[other.idx()] {
                                dead_links.push(li);
                            }
                        }
                    }
                }
            }
        }
        (dead_links, dead_switches)
    }

    /// Alive switches in ascending id order.
    pub fn alive_switches(&self) -> impl Iterator<Item = SwitchId> + '_ {
        self.switch_up
            .iter()
            .enumerate()
            .filter(|(_, &u)| u)
            .map(|(i, _)| SwitchId(i as u16))
    }

    /// True if all alive switches are mutually reachable over alive links
    /// (vacuously true with zero or one alive switch).
    pub fn is_connected(&self, topo: &Topology) -> bool {
        let Some(start) = self.alive_switches().next() else {
            return true;
        };
        let n = topo.num_switches();
        let mut seen = vec![false; n];
        let mut stack = vec![start];
        seen[start.idx()] = true;
        while let Some(s) = stack.pop() {
            for (l, peer, _) in topo.neighbors(s) {
                if self.link_up(topo, l) && !seen[peer.idx()] {
                    seen[peer.idx()] = true;
                    stack.push(peer);
                }
            }
        }
        self.alive_switches().all(|s| seen[s.idx()])
    }

    /// Pick a victim whose death keeps the alive switch graph connected,
    /// or `None` if no candidate qualifies. Candidates are shuffled with
    /// the caller's PRNG, so selection is seeded-deterministic.
    fn pick_safe_victim(
        &self,
        topo: &Topology,
        rng: &mut SmallRng,
        want_switch: bool,
        protect: &[SwitchId],
    ) -> Option<FaultKind> {
        let mut candidates: Vec<FaultKind> = if want_switch {
            self.alive_switches()
                .filter(|s| !protect.contains(s))
                .map(FaultKind::Switch)
                .collect()
        } else {
            topo.links()
                .filter(|(l, _)| self.link_up(topo, *l))
                .map(|(l, _)| FaultKind::Link(l))
                .collect()
        };
        // Fisher–Yates with the seeded PRNG: deterministic order.
        for i in (1..candidates.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            candidates.swap(i, j);
        }
        for kind in candidates {
            let mut trial = self.clone();
            trial.kill(topo, kind);
            if trial.alive_switches().next().is_none() {
                continue;
            }
            if protect.iter().any(|&s| !trial.switch_up(s)) {
                continue;
            }
            if trial.is_connected(topo) {
                return Some(kind);
            }
        }
        None
    }
}

/// What the transient-error channel did to one flit transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlitFate {
    /// The flit crossed the link intact.
    Ok,
    /// Bit errors in transit: the flit arrives but fails the receiver's
    /// CRC check.
    Corrupted,
    /// The flit vanished in transit (a dropped symbol the receiver's
    /// sequence check exposes as a gap).
    Dropped,
}

/// Seeded transient soft-error model for inter-switch links.
///
/// Unlike [`FaultPlan`] — which kills components *permanently* — this
/// models the dominant failure mode of real fabrics: individual flits
/// corrupted or dropped in transit while the link itself stays up. Each
/// flit transmission draws its fate as a **pure function** of
/// `(seed, directed link, cycle)` via the in-tree splitmix hash: no PRNG
/// stream is consumed, so the draw an engine makes is independent of how
/// many other draws happened before it. That statelessness is what makes
/// runs byte-reproducible, resumable mid-campaign, and identical between
/// the event-driven scheduler and the full-scan oracle (which evaluate
/// transmissions in different orders but at the same cycles).
///
/// Rates are expressed in parts per billion per flit transmission, so
/// integer configs round-trip exactly through canonical strings. A
/// zero-rate model never perturbs anything: engines treat it as absent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorModel {
    /// Corruption probability per flit transmission, in parts per billion.
    pub corrupt_ppb: u32,
    /// Drop probability per flit transmission, in parts per billion.
    pub drop_ppb: u32,
    /// Seed of the per-(link, cycle) fate draws.
    pub seed: u64,
}

/// Denominator of the per-billion rates.
const PPB: u64 = 1_000_000_000;

impl ErrorModel {
    /// A model applying the same rates to every link.
    pub fn uniform(corrupt_ppb: u32, drop_ppb: u32, seed: u64) -> Self {
        assert!(
            corrupt_ppb as u64 + drop_ppb as u64 <= PPB,
            "error rates exceed 1.0"
        );
        ErrorModel { corrupt_ppb, drop_ppb, seed }
    }

    /// True if no transmission can ever be damaged.
    pub fn is_zero(&self) -> bool {
        self.corrupt_ppb == 0 && self.drop_ppb == 0
    }

    /// Fate of the flit transmitted on directed link `dir_link`
    /// (`link_id * 2 + departing_side`) at `cycle`. Deterministic: the
    /// same `(seed, dir_link, cycle)` always answers the same, so the
    /// sender deciding whether to hold for a replay and the receiver
    /// checking its CRC agree without exchanging state.
    #[inline]
    pub fn fate(&self, dir_link: u32, cycle: u64) -> FlitFate {
        if self.is_zero() {
            return FlitFate::Ok;
        }
        let draw = crate::rng::hash3(self.seed, dir_link as u64, cycle) % PPB;
        if draw < self.drop_ppb as u64 {
            FlitFate::Dropped
        } else if draw < self.drop_ppb as u64 + self.corrupt_ppb as u64 {
            FlitFate::Corrupted
        } else {
            FlitFate::Ok
        }
    }

    /// Canonical one-line encoding; equal models produce equal strings.
    pub fn canonical_string(&self) -> String {
        format!(
            "err{{corrupt_ppb={},drop_ppb={},seed={:#x}}}",
            self.corrupt_ppb, self.drop_ppb, self.seed
        )
    }

    /// Stable 64-bit fingerprint (FNV-1a over [`Self::canonical_string`]);
    /// campaigns record it so journals carrying different error models
    /// refuse to merge.
    pub fn fingerprint(&self) -> u64 {
        crate::rng::fnv1a(self.canonical_string().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn topo() -> Topology {
        zoo::paper_example().unwrap()
    }

    #[test]
    fn healthy_status_reports_everything_up() {
        let t = topo();
        let s = FaultStatus::healthy(&t);
        assert!(s.is_healthy());
        assert!(s.is_connected(&t));
        assert_eq!(s.alive_switches().count(), t.num_switches());
        for (l, _) in t.links() {
            assert!(s.link_up(&t, l));
        }
    }

    #[test]
    fn switch_kill_takes_links_and_hosts_down() {
        let t = topo();
        let mut s = FaultStatus::healthy(&t);
        let (links, switches) = s.kill(&t, FaultKind::Switch(SwitchId(3)));
        assert_eq!(switches, vec![SwitchId(3)]);
        assert!(!links.is_empty());
        assert!(!s.switch_up(SwitchId(3)));
        for l in links {
            assert!(!s.link_up(&t, l));
        }
        for (n, h) in t.hosts() {
            assert_eq!(s.host_up(&t, n), h.switch != SwitchId(3));
        }
    }

    #[test]
    fn repeated_kill_is_noop() {
        let t = topo();
        let mut s = FaultStatus::healthy(&t);
        let first = s.kill(&t, FaultKind::Link(LinkId(0)));
        assert_eq!(first.0, vec![LinkId(0)]);
        let second = s.kill(&t, FaultKind::Link(LinkId(0)));
        assert!(second.0.is_empty() && second.1.is_empty());
    }

    #[test]
    fn random_plans_are_deterministic_and_safe() {
        let t = topo();
        let cfg = RandomFaultConfig {
            kills: 4,
            switch_every: 3,
            window: (1_000, 100_000),
            seed: 42,
            protect: vec![SwitchId(0)],
        };
        let a = FaultPlan::random(&t, &cfg);
        let b = FaultPlan::random(&t, &cfg);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.events().len(), 4);
        // Applying the whole plan keeps the alive graph connected and
        // the protected switch alive.
        let mut s = FaultStatus::healthy(&t);
        for e in a.events() {
            s.kill(&t, e.kind);
            assert!(s.is_connected(&t));
            assert!(s.switch_up(SwitchId(0)));
        }
        assert!(!s.is_healthy());
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let t = topo();
        let mk = |seed| {
            FaultPlan::random(
                &t,
                &RandomFaultConfig {
                    kills: 3,
                    switch_every: 0,
                    window: (0, 10_000),
                    seed,
                    protect: vec![],
                },
            )
        };
        // Not guaranteed in general, but with 11 links two seeds out of
        // three picks colliding completely is astronomically unlikely.
        assert_ne!(mk(1).events(), mk(2).events());
    }

    #[test]
    fn error_model_draws_are_stateless_and_seeded() {
        let m = ErrorModel::uniform(100_000_000, 50_000_000, 0xBEEF);
        // Pure function: any evaluation order gives the same answers.
        let forward: Vec<FlitFate> = (0..64).map(|c| m.fate(3, c)).collect();
        let backward: Vec<FlitFate> = (0..64).rev().map(|c| m.fate(3, c)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
        // At 15% combined rate, 64 draws must include both outcomes.
        assert!(forward.iter().any(|f| *f != FlitFate::Ok));
        assert!(forward.iter().any(|f| *f == FlitFate::Ok));
        // A different seed reshuffles the pattern.
        let m2 = ErrorModel::uniform(100_000_000, 50_000_000, 0xF00D);
        let other: Vec<FlitFate> = (0..64).map(|c| m2.fate(3, c)).collect();
        assert_ne!(forward, other);
        // Directed links draw independently.
        let d2: Vec<FlitFate> = (0..64).map(|c| m.fate(4, c)).collect();
        assert_ne!(forward, d2);
    }

    #[test]
    fn zero_rate_model_is_inert() {
        let m = ErrorModel::uniform(0, 0, 0x5EED);
        assert!(m.is_zero());
        for c in 0..1000 {
            assert_eq!(m.fate(0, c), FlitFate::Ok);
        }
    }

    #[test]
    fn error_model_fingerprint_tracks_every_field() {
        let base = ErrorModel::uniform(1000, 2000, 7);
        assert_eq!(base.fingerprint(), ErrorModel::uniform(1000, 2000, 7).fingerprint());
        assert_ne!(base.fingerprint(), ErrorModel::uniform(1001, 2000, 7).fingerprint());
        assert_ne!(base.fingerprint(), ErrorModel::uniform(1000, 2001, 7).fingerprint());
        assert_ne!(base.fingerprint(), ErrorModel::uniform(1000, 2000, 8).fingerprint());
    }

    #[test]
    #[should_panic(expected = "error rates exceed 1.0")]
    fn overfull_rates_are_rejected() {
        ErrorModel::uniform(600_000_000, 500_000_000, 0);
    }

    #[test]
    fn events_are_sorted_by_cycle() {
        let plan = FaultPlan::scheduled(vec![
            FaultEvent { at: 500, kind: FaultKind::Link(LinkId(1)) },
            FaultEvent { at: 100, kind: FaultKind::Link(LinkId(0)) },
        ]);
        assert_eq!(plan.events()[0].at, 100);
        assert!(!plan.is_empty());
        assert!(FaultPlan::default().is_empty());
    }
}
