//! Seeded random generation of connected irregular topologies.
//!
//! The paper evaluates on randomly generated irregular topologies
//! ("Using this method we generated ⟨several⟩ different topologies, and our
//! results are averaged over all these topologies", §4.1, citing the
//! authors' CSIM testbed paper). We reproduce the spirit of that method:
//!
//! 1. connect the switches with a uniformly random spanning tree
//!    (guaranteeing connectivity),
//! 2. add extra inter-switch links between random port-free switch pairs
//!    (parallel links allowed, self links not),
//! 3. scatter the hosts over the remaining free ports as evenly as the
//!    random draw allows.
//!
//! Everything is driven by a seeded [`SmallRng`] (the in-repo
//! deterministic xoshiro256** generator), so a `(config, seed)` pair
//! always yields the same topology.

use crate::builder::TopologyBuilder;
use crate::error::TopologyError;
use crate::graph::Topology;
use crate::ids::SwitchId;
use crate::rng::SmallRng;

/// How many extra (non-spanning-tree) inter-switch links to add.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExtraLinks {
    /// An absolute number of extra links.
    Count(usize),
    /// `fraction * (num_switches - 1)` extra links (rounded down). The
    /// default `0.75` gives the paper's default network (8 switches) a
    /// total of 7 + 5 = 12 inter-switch links, leaving a few ports open.
    Fraction(f64),
}

/// Configuration for [`generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomTopologyConfig {
    /// Number of switches.
    pub num_switches: usize,
    /// Ports per switch (the paper uses 8-port switches).
    pub ports_per_switch: u8,
    /// Number of hosts (processing nodes) to attach.
    pub num_hosts: usize,
    /// Extra links beyond the random spanning tree.
    pub extra_links: ExtraLinks,
    /// RNG seed; same seed + config = same topology.
    pub seed: u64,
}

impl RandomTopologyConfig {
    /// The paper's default system: 32 nodes, eight 8-port switches.
    pub fn paper_default(seed: u64) -> Self {
        RandomTopologyConfig {
            num_switches: 8,
            ports_per_switch: 8,
            num_hosts: 32,
            extra_links: ExtraLinks::Fraction(0.75),
            seed,
        }
    }

    /// The paper's Fig. 7 / Fig. 10 variants: same 32 nodes spread over
    /// more switches ("we increased the number of switches used while
    /// keeping the system size constant").
    pub fn with_switches(seed: u64, num_switches: usize) -> Self {
        RandomTopologyConfig { num_switches, ..Self::paper_default(seed) }
    }

    /// Resolve the extra-link knob to an absolute count.
    pub fn extra_link_count(&self) -> usize {
        match self.extra_links {
            ExtraLinks::Count(c) => c,
            ExtraLinks::Fraction(f) => ((self.num_switches.saturating_sub(1)) as f64 * f) as usize,
        }
    }

    /// Canonical one-line encoding of every field. Equal configs produce
    /// equal strings; this is the cache key and manifest serialization
    /// used by the experiment harness.
    pub fn canonical_string(&self) -> String {
        let extra = match self.extra_links {
            ExtraLinks::Count(c) => format!("count:{c}"),
            ExtraLinks::Fraction(f) => format!("frac:{f:?}"),
        };
        format!(
            "topo{{switches={},ports={},hosts={},extra={},seed={}}}",
            self.num_switches, self.ports_per_switch, self.num_hosts, extra, self.seed
        )
    }

    /// Stable 64-bit fingerprint of the config (FNV-1a over
    /// [`Self::canonical_string`]); identical across runs and platforms.
    pub fn stable_hash(&self) -> u64 {
        crate::rng::fnv1a(self.canonical_string().as_bytes())
    }
}

/// Generate a random connected irregular topology.
///
/// Fails if the port budget cannot fit the spanning tree plus hosts
/// (extra links are best-effort: they are dropped when no port-free pair
/// remains).
pub fn generate(cfg: &RandomTopologyConfig) -> Result<Topology, TopologyError> {
    if cfg.num_switches == 0 || cfg.num_hosts == 0 {
        return Err(TopologyError::Empty);
    }
    let total_ports = cfg.num_switches * cfg.ports_per_switch as usize;
    let needed = cfg.num_hosts + 2 * (cfg.num_switches - 1);
    if needed > total_ports {
        return Err(TopologyError::InsufficientPorts { needed, available: total_ports });
    }

    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut b = TopologyBuilder::new();
    let switches: Vec<SwitchId> = (0..cfg.num_switches)
        .map(|_| b.add_switch(cfg.ports_per_switch))
        .collect();

    // 1. Random spanning tree: attach each switch (in random order) to a
    //    uniformly random already-attached switch.
    let mut order: Vec<usize> = (0..cfg.num_switches).collect();
    shuffle(&mut order, &mut rng);
    for i in 1..order.len() {
        // Parent: a uniformly random already-attached switch that still
        // has a free port (a pure uniform choice could exhaust one switch
        // in star-shaped draws).
        let parents: Vec<usize> = order[..i]
            .iter()
            .copied()
            .filter(|&p| b.free_ports(switches[p]) > 0)
            .collect();
        let parent = *parents.get(rng.gen_range(0..parents.len().max(1))).ok_or(
            TopologyError::InsufficientPorts { needed, available: total_ports },
        )?;
        let child = order[i];
        b.add_link(switches[parent], switches[child])?;
    }

    // 2. Hosts on random free ports, spread as evenly as possible: each
    //    round attaches one host to a random switch among those with the
    //    most free ports, which mirrors the roughly even node counts of
    //    the paper's figures while staying irregular.
    //    We must also keep enough free ports for the extra links? Extra
    //    links are best-effort, so hosts take priority.
    for _ in 0..cfg.num_hosts {
        let max_free = (0..cfg.num_switches)
            .map(|s| b.free_ports(switches[s]))
            .max()
            .unwrap_or(0);
        if max_free == 0 {
            return Err(TopologyError::InsufficientPorts {
                needed,
                available: total_ports,
            });
        }
        let cands: Vec<usize> = (0..cfg.num_switches)
            .filter(|&s| b.free_ports(switches[s]) == max_free)
            .collect();
        let pick = cands[rng.gen_range(0..cands.len())];
        b.add_host(switches[pick])?;
    }

    // 3. Extra links between random switch pairs with free ports.
    let mut extra = cfg.extra_link_count();
    let mut attempts = 0usize;
    while extra > 0 && attempts < 64 * (extra + 1) {
        attempts += 1;
        let free: Vec<usize> = (0..cfg.num_switches)
            .filter(|&s| b.free_ports(switches[s]) > 0)
            .collect();
        if free.len() < 2 {
            break;
        }
        let a = free[rng.gen_range(0..free.len())];
        let c = free[rng.gen_range(0..free.len())];
        if a == c {
            continue;
        }
        b.add_link(switches[a], switches[c])?;
        extra -= 1;
    }

    b.build()
}

/// Fisher–Yates shuffle.
fn shuffle<T>(v: &mut [T], rng: &mut SmallRng) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::updown::UpDown;

    #[test]
    fn paper_default_shape() {
        let t = generate(&RandomTopologyConfig::paper_default(0)).unwrap();
        assert_eq!(t.num_switches(), 8);
        assert_eq!(t.num_nodes(), 32);
        // 7 tree links + up to 5 extra
        assert!(t.num_links() >= 7 && t.num_links() <= 12, "{}", t.num_links());
        t.validate().unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&RandomTopologyConfig::paper_default(42)).unwrap();
        let b = generate(&RandomTopologyConfig::paper_default(42)).unwrap();
        assert_eq!(a.num_links(), b.num_links());
        for ((_, la), (_, lb)) in a.links().zip(b.links()) {
            assert_eq!(la, lb);
        }
        for ((_, ha), (_, hb)) in a.hosts().zip(b.hosts()) {
            assert_eq!(ha, hb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&RandomTopologyConfig::paper_default(1)).unwrap();
        let b = generate(&RandomTopologyConfig::paper_default(2)).unwrap();
        let same = a
            .links()
            .zip(b.links())
            .all(|((_, la), (_, lb))| la == lb)
            && a.num_links() == b.num_links();
        assert!(!same, "seeds 1 and 2 produced identical topologies");
    }

    #[test]
    fn many_switches_variant() {
        for s in [8, 16, 32] {
            let t = generate(&RandomTopologyConfig::with_switches(7, s)).unwrap();
            assert_eq!(t.num_switches(), s);
            assert_eq!(t.num_nodes(), 32);
            let ud = UpDown::compute(&t, SwitchId(0)).unwrap();
            ud.verify_acyclic(&t).unwrap();
        }
    }

    #[test]
    fn infeasible_config_rejected() {
        let cfg = RandomTopologyConfig {
            num_switches: 2,
            ports_per_switch: 4,
            num_hosts: 8,
            extra_links: ExtraLinks::Count(0),
            seed: 0,
        };
        assert!(matches!(
            generate(&cfg),
            Err(TopologyError::InsufficientPorts { .. })
        ));
    }

    #[test]
    fn hosts_spread_roughly_evenly() {
        // Link ports consume a varying share of each switch, so perfect
        // evenness is impossible; every switch must still host at least
        // one node and the spread must stay narrow enough to keep the
        // "≈4 nodes per switch" shape of the paper's default system.
        let mut spread_sum = 0;
        for seed in 0..12 {
            let t = generate(&RandomTopologyConfig::paper_default(seed)).unwrap();
            let counts: Vec<usize> = t.switches().map(|(s, _)| t.nodes_at(s).len()).collect();
            let min = counts.iter().min().unwrap();
            let max = counts.iter().max().unwrap();
            assert!(*min >= 1 && max - min <= 4, "host spread too uneven: {counts:?}");
            spread_sum += max - min;
        }
        assert!(spread_sum <= 12 * 3, "typical spread too wide: {spread_sum}");
    }

    #[test]
    fn canonical_string_distinguishes_configs() {
        let a = RandomTopologyConfig::paper_default(0);
        let mut b = a.clone();
        assert_eq!(a.canonical_string(), b.clone().canonical_string());
        assert_eq!(a.stable_hash(), b.stable_hash());
        b.seed = 1;
        assert_ne!(a.canonical_string(), b.canonical_string());
        assert_ne!(a.stable_hash(), b.stable_hash());
        let c = RandomTopologyConfig { extra_links: ExtraLinks::Count(5), ..a.clone() };
        assert_ne!(a.stable_hash(), c.stable_hash());
    }

    #[test]
    fn all_seeds_analyzable() {
        for seed in 0..10 {
            let t = generate(&RandomTopologyConfig::paper_default(seed)).unwrap();
            crate::Network::analyze(t).unwrap();
        }
    }
}
