//! The raw switch/host/link graph (§2.1 of the paper, Fig. 1).

use crate::error::TopologyError;
use crate::ids::{LinkId, NodeId, PortIdx, SwitchId};
use crate::mask::NodeMask;

/// What a switch port is wired to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortUse {
    /// Unconnected port ("left open for further connections").
    Open,
    /// A processing node attached through its network interface.
    Host(NodeId),
    /// One end of a bidirectional inter-switch link; `side` records which
    /// endpoint of [`Link`] this port is (0 = `a`, 1 = `b`).
    Link { link: LinkId, side: u8 },
}

/// A switch: an array of ports.
#[derive(Debug, Clone)]
pub struct Switch {
    /// Port assignments, indexed by [`PortIdx`].
    pub ports: Vec<PortUse>,
}

impl Switch {
    /// Number of ports on this switch.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Indices of currently open ports.
    pub fn free_ports(&self) -> impl Iterator<Item = PortIdx> + '_ {
        self.ports
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, PortUse::Open))
            .map(|(i, _)| PortIdx(i as u8))
    }
}

/// A bidirectional link between two switch ports.
///
/// Both directions carry traffic independently (the paper's links are
/// bidirectional full-duplex channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// Endpoint 0.
    pub a: (SwitchId, PortIdx),
    /// Endpoint 1.
    pub b: (SwitchId, PortIdx),
}

impl Link {
    /// The endpoint `(switch, port)` for a given side (0 or 1).
    #[inline]
    pub fn end(&self, side: u8) -> (SwitchId, PortIdx) {
        if side == 0 { self.a } else { self.b }
    }

    /// Given one endpoint's switch, return `(this_side, other_switch)`.
    ///
    /// For parallel self-consistency with multi-links this works purely on
    /// switch ids: if both ends are on the same switch (disallowed) side 0
    /// is returned.
    #[inline]
    pub fn side_of(&self, s: SwitchId) -> Option<u8> {
        if self.a.0 == s {
            Some(0)
        } else if self.b.0 == s {
            Some(1)
        } else {
            None
        }
    }
}

/// Where a host hangs off the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostAttachment {
    /// The switch the host's NI is cabled to.
    pub switch: SwitchId,
    /// The port on that switch.
    pub port: PortIdx,
}

/// An irregular switch-based network: switches, inter-switch links, and
/// hosts attached to switch ports.
///
/// Invariants (checked by [`Topology::validate`]):
/// * the switch graph is connected;
/// * every link endpoint and host attachment references a real port, and
///   that port references it back;
/// * no self-links;
/// * node count within the `u16` [`NodeId`] space (wire headers and the
///   dense engine arrays index nodes by `u16`).
#[derive(Debug, Clone)]
pub struct Topology {
    pub(crate) switches: Vec<Switch>,
    pub(crate) links: Vec<Link>,
    pub(crate) hosts: Vec<HostAttachment>,
}

impl Topology {
    /// Largest supported node count: the full `u16` [`NodeId`] space.
    /// One past it must fail cleanly ([`TopologyError::TooManyNodes`]),
    /// never wrap.
    pub const MAX_NODES: usize = u16::MAX as usize + 1;

    /// Construct from raw parts. Prefer [`crate::TopologyBuilder`] or
    /// [`crate::gen::generate`]; this is public for hand-written fixtures.
    pub fn from_parts(
        switches: Vec<Switch>,
        links: Vec<Link>,
        hosts: Vec<HostAttachment>,
    ) -> Result<Self, TopologyError> {
        let t = Topology { switches, links, hosts };
        t.validate()?;
        Ok(t)
    }

    /// Number of switches.
    #[inline]
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Number of processing nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.hosts.len()
    }

    /// Number of bidirectional inter-switch links.
    #[inline]
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Access a switch.
    #[inline]
    pub fn switch(&self, s: SwitchId) -> &Switch {
        &self.switches[s.idx()]
    }

    /// Access a link.
    #[inline]
    pub fn link(&self, l: LinkId) -> &Link {
        &self.links[l.idx()]
    }

    /// All switches with ids.
    pub fn switches(&self) -> impl Iterator<Item = (SwitchId, &Switch)> {
        self.switches
            .iter()
            .enumerate()
            .map(|(i, s)| (SwitchId(i as u16), s))
    }

    /// All links with ids.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId(i as u32), l))
    }

    /// All nodes with their attachments.
    pub fn hosts(&self) -> impl Iterator<Item = (NodeId, HostAttachment)> + '_ {
        self.hosts
            .iter()
            .enumerate()
            .map(|(i, h)| (NodeId(i as u16), *h))
    }

    /// The switch a node hangs off.
    #[inline]
    pub fn host_switch(&self, n: NodeId) -> SwitchId {
        self.hosts[n.idx()].switch
    }

    /// The switch port a node hangs off.
    #[inline]
    pub fn host_port(&self, n: NodeId) -> PortIdx {
        self.hosts[n.idx()].port
    }

    /// Nodes directly attached to a switch, as a mask.
    pub fn nodes_at(&self, s: SwitchId) -> NodeMask {
        let mut m = NodeMask::EMPTY;
        for p in &self.switch(s).ports {
            if let PortUse::Host(n) = p {
                m.insert(*n);
            }
        }
        m
    }

    /// Neighboring `(link, peer switch, local port)` triples of a switch.
    /// Parallel links yield multiple entries for the same peer.
    pub fn neighbors(&self, s: SwitchId) -> impl Iterator<Item = (LinkId, SwitchId, PortIdx)> + '_ {
        self.switch(s)
            .ports
            .iter()
            .enumerate()
            .filter_map(move |(pi, pu)| match pu {
                PortUse::Link { link, side } => {
                    let l = self.link(*link);
                    let peer = l.end(1 - side).0;
                    Some((*link, peer, PortIdx(pi as u8)))
                }
                _ => None,
            })
    }

    /// The average number of nodes per switch — the quantity the paper's
    /// Fig. 7 discussion varies ("the average number of multicast
    /// destinations per switch decreases").
    pub fn avg_nodes_per_switch(&self) -> f64 {
        self.num_nodes() as f64 / self.num_switches() as f64
    }

    /// Full structural validation; see the type-level invariants.
    pub fn validate(&self) -> Result<(), TopologyError> {
        if self.switches.is_empty() || self.hosts.is_empty() {
            return Err(TopologyError::Empty);
        }
        if self.hosts.len() > Topology::MAX_NODES {
            return Err(TopologyError::TooManyNodes(self.hosts.len()));
        }
        // Link endpoints reference back.
        for (li, l) in self.links.iter().enumerate() {
            if l.a.0 == l.b.0 {
                return Err(TopologyError::SelfLink(l.a.0));
            }
            for side in 0..2u8 {
                let (s, p) = l.end(side);
                let sw = self
                    .switches
                    .get(s.idx())
                    .ok_or(TopologyError::Inconsistent("link references missing switch"))?;
                let pu = sw.ports.get(p.idx()).ok_or(TopologyError::BadPort {
                    switch: s,
                    port: p.0,
                    ports_per_switch: sw.num_ports() as u8,
                })?;
                match pu {
                    PortUse::Link { link, side: ps } if link.idx() == li && *ps == side => {}
                    _ => return Err(TopologyError::Inconsistent("port does not reference link back")),
                }
            }
        }
        // Host attachments reference back.
        for (ni, h) in self.hosts.iter().enumerate() {
            let sw = self
                .switches
                .get(h.switch.idx())
                .ok_or(TopologyError::DanglingHost { node: NodeId(ni as u16), switch: h.switch })?;
            match sw.ports.get(h.port.idx()) {
                Some(PortUse::Host(n)) if n.idx() == ni => {}
                _ => return Err(TopologyError::Inconsistent("host port does not reference host back")),
            }
        }
        // Every port that claims a host/link is consistent (reverse check).
        for (si, sw) in self.switches.iter().enumerate() {
            for (pi, pu) in sw.ports.iter().enumerate() {
                match pu {
                    PortUse::Open => {}
                    PortUse::Host(n) => {
                        let h = self
                            .hosts
                            .get(n.idx())
                            .ok_or(TopologyError::Inconsistent("port references missing host"))?;
                        if h.switch.idx() != si || h.port.idx() != pi {
                            return Err(TopologyError::Inconsistent("host attachment mismatch"));
                        }
                    }
                    PortUse::Link { link, side } => {
                        let l = self
                            .links
                            .get(link.idx())
                            .ok_or(TopologyError::Inconsistent("port references missing link"))?;
                        let (s, p) = l.end(*side);
                        if s.idx() != si || p.idx() != pi {
                            return Err(TopologyError::Inconsistent("link endpoint mismatch"));
                        }
                    }
                }
            }
        }
        // Connectivity over the switch graph: union-find over the link
        // list (O(E·α), no per-switch port rescans). The first switch in
        // a different component from S0 is reported, matching the old
        // DFS ("lowest id unreachable from S0").
        let mut dsu = crate::dsu::Dsu::new(self.switches.len());
        for l in &self.links {
            dsu.union(l.a.0.idx(), l.b.0.idx());
        }
        if let Some(u) = dsu.first_outside_component_of(0) {
            return Err(TopologyError::Disconnected { unreachable: SwitchId(u as u16) });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TopologyBuilder;

    fn tiny() -> Topology {
        // Two switches, one link, one host each.
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch(4);
        let s1 = b.add_switch(4);
        b.add_link(s0, s1).unwrap();
        b.add_host(s0).unwrap();
        b.add_host(s1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts() {
        let t = tiny();
        assert_eq!(t.num_switches(), 2);
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.num_links(), 1);
        assert_eq!(t.avg_nodes_per_switch(), 1.0);
    }

    #[test]
    fn nodes_at_returns_attached_hosts() {
        let t = tiny();
        assert_eq!(t.nodes_at(SwitchId(0)), NodeMask::single(NodeId(0)));
        assert_eq!(t.nodes_at(SwitchId(1)), NodeMask::single(NodeId(1)));
    }

    #[test]
    fn neighbors_are_symmetric() {
        let t = tiny();
        let n0: Vec<_> = t.neighbors(SwitchId(0)).collect();
        let n1: Vec<_> = t.neighbors(SwitchId(1)).collect();
        assert_eq!(n0.len(), 1);
        assert_eq!(n1.len(), 1);
        assert_eq!(n0[0].1, SwitchId(1));
        assert_eq!(n1[0].1, SwitchId(0));
        assert_eq!(n0[0].0, n1[0].0);
    }

    #[test]
    fn disconnected_is_rejected() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch(4);
        let s1 = b.add_switch(4);
        b.add_host(s0).unwrap();
        b.add_host(s1).unwrap();
        assert!(matches!(b.build(), Err(TopologyError::Disconnected { .. })));
    }

    #[test]
    fn empty_is_rejected() {
        let b = TopologyBuilder::new();
        assert!(matches!(b.build(), Err(TopologyError::Empty)));
    }

    #[test]
    fn host_lookup_round_trips() {
        let t = tiny();
        for (n, h) in t.hosts() {
            assert_eq!(t.host_switch(n), h.switch);
            assert_eq!(t.host_port(n), h.port);
        }
    }

    #[test]
    fn link_side_of() {
        let t = tiny();
        let l = t.link(LinkId(0));
        assert!(l.side_of(SwitchId(0)).is_some());
        assert!(l.side_of(SwitchId(1)).is_some());
        assert_eq!(l.side_of(SwitchId(7)), None);
    }

    #[test]
    fn parallel_links_allowed() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch(4);
        let s1 = b.add_switch(4);
        b.add_link(s0, s1).unwrap();
        b.add_link(s0, s1).unwrap();
        b.add_host(s0).unwrap();
        b.add_host(s1).unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.num_links(), 2);
        assert_eq!(t.neighbors(SwitchId(0)).count(), 2);
    }
}
