//! Strongly typed identifiers for switches, nodes, ports, and links.
//!
//! Using newtypes instead of bare integers keeps the many index spaces in
//! the simulator (switch index, host index, port index, link index) from
//! being confused with each other at zero runtime cost.

use std::fmt;

/// Identifier of a switch (router). Dense, `0..num_switches`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(pub u16);

/// Identifier of a processing node (host). Dense, `0..num_nodes`.
///
/// The paper calls these "processing elements" or simply "nodes"; each is
/// attached to exactly one switch port through its network interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

/// A port index within a single switch (`0..ports_per_switch`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortIdx(pub u8);

/// Identifier of a bidirectional inter-switch link. Dense, `0..num_links`.
///
/// Multiple parallel links between the same pair of switches are allowed
/// and receive distinct `LinkId`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl SwitchId {
    /// The switch id as a plain index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl NodeId {
    /// The node id as a plain index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl PortIdx {
    /// The port index as a plain index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// The link id as a plain index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for PortIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(SwitchId(3).to_string(), "S3");
        assert_eq!(NodeId(12).to_string(), "n12");
        assert_eq!(PortIdx(7).to_string(), "p7");
        assert_eq!(LinkId(0).to_string(), "L0");
    }

    #[test]
    fn idx_round_trip() {
        assert_eq!(SwitchId(9).idx(), 9);
        assert_eq!(NodeId(1).idx(), 1);
        assert_eq!(PortIdx(2).idx(), 2);
        assert_eq!(LinkId(5).idx(), 5);
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(SwitchId(1) < SwitchId(2));
        assert!(NodeId(0) < NodeId(10));
    }
}
