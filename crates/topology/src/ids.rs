//! Strongly typed identifiers for switches, nodes, ports, and links.
//!
//! Using newtypes instead of bare integers keeps the many index spaces in
//! the simulator (switch index, host index, port index, link index) from
//! being confused with each other at zero runtime cost.

use std::fmt;

/// An id constructor was handed an index outside the id type's range.
///
/// Giant-topology configurations (10k hosts, thousands of switches) sit
/// close enough to the `u16`/`u8` id widths that silent `as` truncation
/// would alias distinct components; every checked constructor returns
/// this typed error instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdOverflow {
    /// Which id type overflowed (`"SwitchId"`, `"NodeId"`, ...).
    pub kind: &'static str,
    /// The offending index.
    pub value: usize,
    /// Largest representable index of the type.
    pub max: usize,
}

impl fmt::Display for IdOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} index {} exceeds the id ceiling {} — the component space \
             is wider than the id type",
            self.kind, self.value, self.max
        )
    }
}

impl std::error::Error for IdOverflow {}

macro_rules! checked_id {
    ($ty:ident, $repr:ty) => {
        impl $ty {
            /// Checked constructor: fails with a typed [`IdOverflow`]
            /// instead of truncating like `as` would.
            #[inline]
            pub fn try_new(idx: usize) -> Result<Self, IdOverflow> {
                <$repr>::try_from(idx).map($ty).map_err(|_| IdOverflow {
                    kind: stringify!($ty),
                    value: idx,
                    max: <$repr>::MAX as usize,
                })
            }
        }

        impl TryFrom<usize> for $ty {
            type Error = IdOverflow;
            #[inline]
            fn try_from(idx: usize) -> Result<Self, IdOverflow> {
                $ty::try_new(idx)
            }
        }
    };
}

/// Identifier of a switch (router). Dense, `0..num_switches`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(pub u16);

/// Identifier of a processing node (host). Dense, `0..num_nodes`.
///
/// The paper calls these "processing elements" or simply "nodes"; each is
/// attached to exactly one switch port through its network interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

/// A port index within a single switch (`0..ports_per_switch`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortIdx(pub u8);

/// Identifier of a bidirectional inter-switch link. Dense, `0..num_links`.
///
/// Multiple parallel links between the same pair of switches are allowed
/// and receive distinct `LinkId`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

checked_id!(SwitchId, u16);
checked_id!(NodeId, u16);
checked_id!(PortIdx, u8);
checked_id!(LinkId, u32);

impl SwitchId {
    /// The switch id as a plain index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl NodeId {
    /// The node id as a plain index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl PortIdx {
    /// The port index as a plain index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// The link id as a plain index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for PortIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(SwitchId(3).to_string(), "S3");
        assert_eq!(NodeId(12).to_string(), "n12");
        assert_eq!(PortIdx(7).to_string(), "p7");
        assert_eq!(LinkId(0).to_string(), "L0");
    }

    #[test]
    fn idx_round_trip() {
        assert_eq!(SwitchId(9).idx(), 9);
        assert_eq!(NodeId(1).idx(), 1);
        assert_eq!(PortIdx(2).idx(), 2);
        assert_eq!(LinkId(5).idx(), 5);
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(SwitchId(1) < SwitchId(2));
        assert!(NodeId(0) < NodeId(10));
    }

    #[test]
    fn checked_constructors_accept_the_full_range() {
        assert_eq!(NodeId::try_new(0), Ok(NodeId(0)));
        assert_eq!(NodeId::try_new(65_535), Ok(NodeId(65_535)));
        assert_eq!(SwitchId::try_new(65_535), Ok(SwitchId(65_535)));
        assert_eq!(PortIdx::try_new(255), Ok(PortIdx(255)));
        assert_eq!(LinkId::try_new(4_294_967_295), Ok(LinkId(4_294_967_295)));
        assert_eq!(SwitchId::try_from(12usize), Ok(SwitchId(12)));
    }

    #[test]
    fn checked_constructors_reject_overflow_with_context() {
        let e = NodeId::try_new(65_536).unwrap_err();
        assert_eq!(e.kind, "NodeId");
        assert_eq!(e.value, 65_536);
        assert_eq!(e.max, 65_535);
        assert!(e.to_string().contains("NodeId"));
        assert!(e.to_string().contains("65536"));
        assert!(PortIdx::try_new(256).is_err());
        assert!(LinkId::try_new(1 << 33).is_err());
    }
}
