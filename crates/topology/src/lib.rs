//! Irregular switch-based network topologies with up*/down* routing.
//!
//! This crate models the network substrate of Sivaram, Kesavan, Panda and
//! Stunkel, *"Where to Provide Support for Efficient Multicasting in
//! Irregular Networks: Network Interface or Switch?"* (ICPP '98): a set of
//! crossbar switches with a fixed number of ports, some ports attached to
//! processing nodes (hosts), some connected by bidirectional links to other
//! switches (multiple parallel links between a switch pair are allowed), and
//! some left open. The only guarantee is that the network is connected.
//!
//! On top of the raw graph the crate provides:
//!
//! * [`updown::UpDown`] — the Autonet-style BFS spanning tree and the
//!   loop-free assignment of an *up* end to every link (§2.2 of the paper);
//! * [`routing::RoutingTables`] — deadlock-free adaptive up*/down* routing:
//!   all minimal legal next hops for every (switch, phase, destination
//!   switch) triple, where a legal route traverses zero or more *up* links
//!   followed by zero or more *down* links;
//! * [`reach::Reachability`] — the per-output-port *reachability strings*
//!   used by the tree-based multidestination-worm scheme (§3.2.3);
//! * [`apex::ApexPlan`] — the up-phase guidance a tree-based worm needs to
//!   reach a least-common-ancestor switch that covers a destination set;
//! * [`gen`] — a seeded random generator for connected irregular topologies
//!   (the paper averages results over several of these), and [`zoo`] — a few
//!   fixed topologies for tests and examples.
//!
//! All structures are immutable after construction and cheap to share.

pub mod apex;
pub mod builder;
pub mod dot;
pub mod dsu;
pub mod error;
pub mod fault;
pub mod gen;
pub mod graph;
pub mod ids;
pub mod mask;
pub mod metrics;
pub mod reach;
pub mod rng;
pub mod routing;
pub mod updown;
pub mod zoo;

pub use apex::ApexPlan;
pub use builder::TopologyBuilder;
pub use error::TopologyError;
pub use fault::{ErrorModel, FaultEvent, FaultKind, FaultPlan, FaultStatus, FlitFate, RandomFaultConfig};
pub use gen::{generate, ExtraLinks, RandomTopologyConfig};
pub use graph::{Link, PortUse, Switch, Topology};
pub use ids::{IdOverflow, LinkId, NodeId, PortIdx, SwitchId};
pub use mask::NodeMask;
pub use metrics::{link_is_redundant, network_metrics, remove_link, NetworkMetrics};
pub use reach::{ReachSet, Reachability};
pub use routing::{Phase, PortCandidate, RoutingTables};
pub use updown::UpDown;

/// Everything a downstream crate typically needs, in one import.
pub mod prelude {
    pub use crate::apex::ApexPlan;
    pub use crate::builder::TopologyBuilder;
    pub use crate::error::TopologyError;
    pub use crate::fault::{ErrorModel, FaultEvent, FaultKind, FaultPlan, FaultStatus, FlitFate, RandomFaultConfig};
    pub use crate::gen::{self, RandomTopologyConfig};
    pub use crate::graph::{Link, PortUse, Switch, Topology};
    pub use crate::ids::{LinkId, NodeId, PortIdx, SwitchId};
    pub use crate::mask::NodeMask;
    pub use crate::reach::{ReachSet, Reachability};
    pub use crate::routing::{Phase, PortCandidate, RoutingTables};
    pub use crate::updown::UpDown;
    pub use crate::zoo;
}

/// A fully analyzed network: the topology plus every derived routing
/// structure the simulator and the multicast planners consume.
///
/// Constructing a [`Network`] runs the whole Autonet pipeline once
/// (BFS spanning tree, up/down orientation, routing tables, reachability
/// strings) so later per-multicast planning is cheap.
#[derive(Debug, Clone)]
pub struct Network {
    /// The raw switch/host/link graph.
    pub topo: Topology,
    /// BFS spanning tree and up/down link orientation.
    pub updown: UpDown,
    /// Adaptive up*/down* routing tables.
    pub routing: RoutingTables,
    /// Per-port reachability strings for multidestination worms.
    pub reach: Reachability,
    /// The fault status this analysis was computed under (`None` =
    /// healthy). Carried so a further [`Network::degrade`] can diff
    /// against the correct baseline when recomputing incrementally.
    pub status: Option<fault::FaultStatus>,
}

impl Network {
    /// Analyze a topology, rooting the spanning tree at the default root
    /// (the switch with the lowest identifier, mirroring a deterministic
    /// Autonet election).
    pub fn analyze(topo: Topology) -> Result<Self, TopologyError> {
        Self::analyze_rooted(topo, SwitchId(0))
    }

    /// Analyze a topology with an explicit spanning-tree root.
    pub fn analyze_rooted(topo: Topology, root: SwitchId) -> Result<Self, TopologyError> {
        topo.validate()?;
        let updown = UpDown::compute(&topo, root)?;
        let routing = RoutingTables::compute(&topo, &updown)?;
        let reach = Reachability::compute(&topo, &updown)?;
        Ok(Self { topo, updown, routing, reach, status: None })
    }

    /// Re-analyze the network after faults, Autonet-style: re-elect a root
    /// (the previous root if it survived, else the lowest-id alive switch),
    /// recompute the up/down orientation over surviving links only, and
    /// rebuild routing tables and reachability strings so no route or tree
    /// branch crosses a dead component.
    ///
    /// Returns [`TopologyError::PartitionedNetwork`] when the surviving
    /// graph is disconnected — callers decide whether that is fatal.
    pub fn degrade(&self, status: &fault::FaultStatus) -> Result<Self, TopologyError> {
        if status.is_healthy() {
            return Ok(self.clone());
        }
        let old_root = self.updown.root();
        let root = if status.switch_up(old_root) {
            old_root
        } else {
            status
                .alive_switches()
                .next()
                .ok_or(TopologyError::Inconsistent("no alive switch left"))?
        };
        let updown = UpDown::compute_masked(&self.topo, root, status)?;
        let routing = RoutingTables::compute_masked(&self.topo, &updown, status)?;
        // Reachability recomputes only the switches whose orientation or
        // liveness inputs actually changed; clean subtrees are reused.
        let (reach, _recomputed) = self.reach.recompute_incremental(
            &self.topo,
            &updown,
            status,
            &self.updown,
            self.status.as_ref(),
        )?;
        Ok(Self {
            topo: self.topo.clone(),
            updown,
            routing,
            reach,
            status: Some(status.clone()),
        })
    }

    /// Number of processing nodes attached to the network.
    pub fn num_nodes(&self) -> usize {
        self.topo.num_nodes()
    }

    /// Number of switches in the network.
    pub fn num_switches(&self) -> usize {
        self.topo.num_switches()
    }
}
