//! Compact destination sets.
//!
//! The tree-based multidestination scheme encodes the destination set of a
//! worm as an *n*-bit string (one bit per node in the system, §3.2.3 of the
//! paper), and the switches compare that string against per-port
//! reachability strings. [`NodeMask`] is exactly that bit string. It backs
//! all destination-set math in the planners and the simulator.
//!
//! The representation is a single `u128`, which bounds the system size at
//! 128 nodes — four times the paper's default system and twice its largest
//! extension experiment. [`NodeMask::CAPACITY`] is asserted at topology
//! construction time.

use crate::ids::NodeId;
use std::fmt;

/// A set of nodes, stored as a bit string (bit *i* set ⇔ node *i* in set).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NodeMask(pub u128);

impl NodeMask {
    /// Maximum number of nodes representable.
    pub const CAPACITY: usize = 128;

    /// The empty set.
    pub const EMPTY: NodeMask = NodeMask(0);

    /// A set containing a single node.
    #[inline]
    pub fn single(node: NodeId) -> Self {
        debug_assert!(node.idx() < Self::CAPACITY);
        NodeMask(1u128 << node.idx())
    }

    /// The full set `0..n`.
    #[inline]
    pub fn all(n: usize) -> Self {
        assert!(n <= Self::CAPACITY, "system size exceeds NodeMask capacity");
        if n == Self::CAPACITY {
            NodeMask(u128::MAX)
        } else {
            NodeMask((1u128 << n) - 1)
        }
    }

    /// Build a set from an iterator of nodes.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(nodes: I) -> Self {
        let mut m = NodeMask::EMPTY;
        for n in nodes {
            m.insert(n);
        }
        m
    }

    /// True if the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of nodes in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, node: NodeId) -> bool {
        self.0 & (1u128 << node.idx()) != 0
    }

    /// Add a node.
    #[inline]
    pub fn insert(&mut self, node: NodeId) {
        debug_assert!(node.idx() < Self::CAPACITY);
        self.0 |= 1u128 << node.idx();
    }

    /// Remove a node.
    #[inline]
    pub fn remove(&mut self, node: NodeId) {
        self.0 &= !(1u128 << node.idx());
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: Self) -> Self {
        NodeMask(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub fn intersection(self, other: Self) -> Self {
        NodeMask(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    #[inline]
    pub fn difference(self, other: Self) -> Self {
        NodeMask(self.0 & !other.0)
    }

    /// True if `self` is a superset of (covers) `other`.
    ///
    /// This is the comparison a switch performs between the union of its
    /// down-port reachability strings and a worm's bit-string header.
    #[inline]
    pub fn covers(self, other: Self) -> bool {
        other.0 & !self.0 == 0
    }

    /// True if the two sets share at least one node. This is the per-port
    /// test a switch performs to decide whether to replicate a worm onto
    /// that port.
    #[inline]
    pub fn intersects(self, other: Self) -> bool {
        self.0 & other.0 != 0
    }

    /// Iterate over the member nodes in increasing id order.
    pub fn iter(self) -> impl Iterator<Item = NodeId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let tz = bits.trailing_zeros() as u16;
                bits &= bits - 1;
                Some(NodeId(tz))
            }
        })
    }

    /// The lowest-numbered node in the set, if any.
    #[inline]
    pub fn first(self) -> Option<NodeId> {
        if self.0 == 0 {
            None
        } else {
            Some(NodeId(self.0.trailing_zeros() as u16))
        }
    }

    /// Number of bytes a bit-string header for an `n`-node system occupies
    /// on the wire (the paper's tree-based worms carry one bit per node).
    #[inline]
    pub fn header_bytes(n_nodes: usize) -> usize {
        n_nodes.div_ceil(8)
    }
}

impl fmt::Debug for NodeMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeMask{{")?;
        let mut first = true;
        for n in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", n.0)?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for NodeMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<NodeId> for NodeMask {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        NodeMask::from_nodes(iter)
    }
}

impl std::ops::BitOr for NodeMask {
    type Output = NodeMask;
    fn bitor(self, rhs: Self) -> Self {
        self.union(rhs)
    }
}

impl std::ops::BitAnd for NodeMask {
    type Output = NodeMask;
    fn bitand(self, rhs: Self) -> Self {
        self.intersection(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        assert!(NodeMask::EMPTY.is_empty());
        assert_eq!(NodeMask::EMPTY.len(), 0);
        let m = NodeMask::single(NodeId(5));
        assert_eq!(m.len(), 1);
        assert!(m.contains(NodeId(5)));
        assert!(!m.contains(NodeId(4)));
    }

    #[test]
    fn all_has_exact_members() {
        let m = NodeMask::all(32);
        assert_eq!(m.len(), 32);
        assert!(m.contains(NodeId(0)));
        assert!(m.contains(NodeId(31)));
        assert!(!m.contains(NodeId(32)));
    }

    #[test]
    fn all_at_capacity() {
        let m = NodeMask::all(128);
        assert_eq!(m.len(), 128);
        assert!(m.contains(NodeId(127)));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn all_beyond_capacity_panics() {
        let _ = NodeMask::all(129);
    }

    #[test]
    fn set_algebra() {
        let a = NodeMask::from_nodes([NodeId(1), NodeId(2), NodeId(3)]);
        let b = NodeMask::from_nodes([NodeId(3), NodeId(4)]);
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersection(b), NodeMask::single(NodeId(3)));
        assert_eq!(a.difference(b), NodeMask::from_nodes([NodeId(1), NodeId(2)]));
        assert!(a.intersects(b));
        assert!(!a.covers(b));
        assert!(a.union(b).covers(a));
    }

    #[test]
    fn covers_is_reflexive_and_empty_is_covered() {
        let a = NodeMask::from_nodes([NodeId(7), NodeId(9)]);
        assert!(a.covers(a));
        assert!(a.covers(NodeMask::EMPTY));
        assert!(NodeMask::EMPTY.covers(NodeMask::EMPTY));
        assert!(!NodeMask::EMPTY.covers(a));
    }

    #[test]
    fn iteration_in_order() {
        let a = NodeMask::from_nodes([NodeId(9), NodeId(1), NodeId(100)]);
        let v: Vec<u16> = a.iter().map(|n| n.0).collect();
        assert_eq!(v, vec![1, 9, 100]);
        assert_eq!(a.first(), Some(NodeId(1)));
    }

    #[test]
    fn remove_and_insert() {
        let mut m = NodeMask::all(4);
        m.remove(NodeId(2));
        assert_eq!(m.len(), 3);
        assert!(!m.contains(NodeId(2)));
        m.insert(NodeId(2));
        assert_eq!(m, NodeMask::all(4));
        // removing an absent member is a no-op
        m.remove(NodeId(99));
        assert_eq!(m, NodeMask::all(4));
    }

    #[test]
    fn header_bytes_rounds_up() {
        assert_eq!(NodeMask::header_bytes(32), 4);
        assert_eq!(NodeMask::header_bytes(33), 5);
        assert_eq!(NodeMask::header_bytes(1), 1);
        assert_eq!(NodeMask::header_bytes(0), 0);
    }

    #[test]
    fn debug_format_lists_members() {
        let a = NodeMask::from_nodes([NodeId(0), NodeId(3)]);
        assert_eq!(format!("{a:?}"), "NodeMask{0,3}");
    }
}
