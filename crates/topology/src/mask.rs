//! Compact destination sets.
//!
//! The tree-based multidestination scheme encodes the destination set of a
//! worm as an *n*-bit string (one bit per node in the system, §3.2.3 of the
//! paper), and the switches compare that string against per-port
//! reachability strings. [`NodeMask`] is exactly that bit string. It backs
//! all destination-set math in the planners and the simulator.
//!
//! The representation is adaptive: systems up to [`NodeMask::INLINE_BITS`]
//! nodes (four times the paper's default, twice its largest extension
//! experiment) live in a single inline `u128` with zero heap traffic —
//! byte-for-byte the pre-scale representation — while giant fabrics
//! (1000 switches / 10k hosts) spill into a reference-counted word
//! vector, so cloning a wide destination set is an `Arc` bump, not a
//! kilobyte memcpy. Both arms keep one canonical form per set value
//! (the spilled arm always has a bit ≥ `INLINE_BITS` set and no trailing
//! zero words), so derived `Eq`/`Hash` remain structural set equality.

use crate::ids::NodeId;
use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// A set of nodes, stored as a bit string (bit *i* set ⇔ node *i* in set).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct NodeMask(Repr);

/// Canonical adaptive representation.
///
/// Invariant: `Big` words have no trailing zero words and their highest
/// set bit is ≥ [`NodeMask::INLINE_BITS`] (otherwise the value collapses
/// to `Small`), so every set has exactly one representation and the
/// derived `PartialEq`/`Hash` are set equality.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// All members < 128: one inline word pair.
    Small(u128),
    /// At least one member ≥ 128: little-endian 64-bit words.
    Big(Arc<[u64]>),
}

#[inline]
fn lo128(words: &[u64]) -> u128 {
    let w0 = words.first().copied().unwrap_or(0) as u128;
    let w1 = words.get(1).copied().unwrap_or(0) as u128;
    w0 | (w1 << 64)
}

/// Trim trailing zero words and collapse to the inline arm when all
/// members fit — the single normalization point of the module.
fn normalize(mut words: Vec<u64>) -> NodeMask {
    while words.last() == Some(&0) {
        words.pop();
    }
    if words.len() <= 2 {
        NodeMask(Repr::Small(lo128(&words)))
    } else {
        NodeMask(Repr::Big(words.into()))
    }
}

impl NodeMask {
    /// Bits stored inline; sets confined below this bound never touch
    /// the heap and behave exactly like the historical `u128` mask.
    pub const INLINE_BITS: usize = 128;

    /// The empty set.
    pub const EMPTY: NodeMask = NodeMask(Repr::Small(0));

    /// A set containing a single node.
    #[inline]
    pub fn single(node: NodeId) -> Self {
        let i = node.idx();
        if i < Self::INLINE_BITS {
            NodeMask(Repr::Small(1u128 << i))
        } else {
            let mut words = vec![0u64; i / 64 + 1];
            words[i / 64] = 1u64 << (i % 64);
            NodeMask(Repr::Big(words.into()))
        }
    }

    /// The full set `0..n`.
    pub fn all(n: usize) -> Self {
        if n <= Self::INLINE_BITS {
            if n == Self::INLINE_BITS {
                NodeMask(Repr::Small(u128::MAX))
            } else {
                NodeMask(Repr::Small((1u128 << n) - 1))
            }
        } else {
            let mut words = vec![u64::MAX; n / 64];
            if !n.is_multiple_of(64) {
                words.push((1u64 << (n % 64)) - 1);
            }
            NodeMask(Repr::Big(words.into()))
        }
    }

    /// Build a set from an iterator of nodes.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(nodes: I) -> Self {
        let mut words: Vec<u64> = Vec::new();
        let mut lo = 0u128;
        for n in nodes {
            let i = n.idx();
            if i < Self::INLINE_BITS && words.is_empty() {
                lo |= 1u128 << i;
            } else {
                if words.is_empty() {
                    words = vec![lo as u64, (lo >> 64) as u64];
                }
                if words.len() <= i / 64 {
                    words.resize(i / 64 + 1, 0);
                }
                words[i / 64] |= 1u64 << (i % 64);
            }
        }
        if words.is_empty() {
            NodeMask(Repr::Small(lo))
        } else {
            normalize(words)
        }
    }

    /// True if the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        // Canonical form: Big always holds a bit ≥ INLINE_BITS.
        matches!(self.0, Repr::Small(0))
    }

    /// Number of nodes in the set.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Small(b) => b.count_ones() as usize,
            Repr::Big(w) => w.iter().map(|x| x.count_ones() as usize).sum(),
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        let i = node.idx();
        match &self.0 {
            Repr::Small(b) => i < Self::INLINE_BITS && b & (1u128 << i) != 0,
            Repr::Big(w) => w.get(i / 64).is_some_and(|x| x & (1u64 << (i % 64)) != 0),
        }
    }

    /// Add a node.
    pub fn insert(&mut self, node: NodeId) {
        let i = node.idx();
        match &mut self.0 {
            Repr::Small(b) if i < Self::INLINE_BITS => *b |= 1u128 << i,
            Repr::Small(b) => {
                let mut words = vec![*b as u64, (*b >> 64) as u64];
                words.resize(i / 64 + 1, 0);
                words[i / 64] |= 1u64 << (i % 64);
                *self = normalize(words);
            }
            Repr::Big(w) => {
                let mut words = w.to_vec();
                if words.len() <= i / 64 {
                    words.resize(i / 64 + 1, 0);
                }
                words[i / 64] |= 1u64 << (i % 64);
                *self = normalize(words);
            }
        }
    }

    /// Remove a node.
    pub fn remove(&mut self, node: NodeId) {
        let i = node.idx();
        match &mut self.0 {
            Repr::Small(b) => {
                if i < Self::INLINE_BITS {
                    *b &= !(1u128 << i);
                }
            }
            Repr::Big(w) => {
                if i / 64 < w.len() {
                    let mut words = w.to_vec();
                    words[i / 64] &= !(1u64 << (i % 64));
                    *self = normalize(words);
                }
            }
        }
    }

    /// Set union.
    pub fn union(&self, other: impl Borrow<Self>) -> Self {
        match (&self.0, &other.borrow().0) {
            (Repr::Small(a), Repr::Small(b)) => NodeMask(Repr::Small(a | b)),
            (Repr::Small(s), Repr::Big(w)) | (Repr::Big(w), Repr::Small(s)) => {
                let mut words = w.to_vec();
                words[0] |= *s as u64;
                words[1] |= (*s >> 64) as u64;
                // Still has the Big arm's high bit: no collapse possible.
                NodeMask(Repr::Big(words.into()))
            }
            (Repr::Big(a), Repr::Big(b)) => {
                let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
                let mut words = long.to_vec();
                for (x, y) in words.iter_mut().zip(short.iter()) {
                    *x |= y;
                }
                NodeMask(Repr::Big(words.into()))
            }
        }
    }

    /// Set intersection.
    pub fn intersection(&self, other: impl Borrow<Self>) -> Self {
        match (&self.0, &other.borrow().0) {
            (Repr::Small(a), Repr::Small(b)) => NodeMask(Repr::Small(a & b)),
            (Repr::Small(s), Repr::Big(w)) | (Repr::Big(w), Repr::Small(s)) => {
                NodeMask(Repr::Small(s & lo128(w)))
            }
            (Repr::Big(a), Repr::Big(b)) => {
                let n = a.len().min(b.len());
                let words: Vec<u64> =
                    a[..n].iter().zip(&b[..n]).map(|(x, y)| x & y).collect();
                normalize(words)
            }
        }
    }

    /// Set difference (`self \ other`).
    pub fn difference(&self, other: impl Borrow<Self>) -> Self {
        match (&self.0, &other.borrow().0) {
            (Repr::Small(a), Repr::Small(b)) => NodeMask(Repr::Small(a & !b)),
            (Repr::Small(a), Repr::Big(w)) => NodeMask(Repr::Small(a & !lo128(w))),
            (Repr::Big(a), Repr::Small(b)) => {
                let mut words = a.to_vec();
                words[0] &= !(*b as u64);
                words[1] &= !((*b >> 64) as u64);
                NodeMask(Repr::Big(words.into()))
            }
            (Repr::Big(a), Repr::Big(b)) => {
                let words: Vec<u64> = a
                    .iter()
                    .enumerate()
                    .map(|(i, x)| x & !b.get(i).copied().unwrap_or(0))
                    .collect();
                normalize(words)
            }
        }
    }

    /// True if `self` is a superset of (covers) `other`.
    ///
    /// This is the comparison a switch performs between the union of its
    /// down-port reachability strings and a worm's bit-string header.
    pub fn covers(&self, other: impl Borrow<Self>) -> bool {
        match (&self.0, &other.borrow().0) {
            (Repr::Small(a), Repr::Small(b)) => b & !a == 0,
            // `other` has a member ≥ INLINE_BITS that a Small self lacks.
            (Repr::Small(_), Repr::Big(_)) => false,
            (Repr::Big(w), Repr::Small(b)) => b & !lo128(w) == 0,
            (Repr::Big(a), Repr::Big(b)) => b
                .iter()
                .enumerate()
                .all(|(i, y)| y & !a.get(i).copied().unwrap_or(0) == 0),
        }
    }

    /// True if the two sets share at least one node. This is the per-port
    /// test a switch performs to decide whether to replicate a worm onto
    /// that port.
    pub fn intersects(&self, other: impl Borrow<Self>) -> bool {
        match (&self.0, &other.borrow().0) {
            (Repr::Small(a), Repr::Small(b)) => a & b != 0,
            (Repr::Small(s), Repr::Big(w)) | (Repr::Big(w), Repr::Small(s)) => {
                s & lo128(w) != 0
            }
            (Repr::Big(a), Repr::Big(b)) => {
                a.iter().zip(b.iter()).any(|(x, y)| x & y != 0)
            }
        }
    }

    /// Iterate over the member nodes in increasing id order. The iterator
    /// owns a (cheap) clone of the set, so it may outlive a temporary.
    pub fn iter(&self) -> NodeMaskIter {
        NodeMaskIter { mask: self.clone(), word: 0, bits: self.word(0) }
    }

    /// The lowest-numbered node in the set, if any.
    pub fn first(&self) -> Option<NodeId> {
        match &self.0 {
            Repr::Small(0) => None,
            Repr::Small(b) => Some(NodeId(b.trailing_zeros() as u16)),
            Repr::Big(w) => w.iter().enumerate().find(|(_, x)| **x != 0).map(
                |(i, x)| NodeId((i * 64) as u16 + x.trailing_zeros() as u16),
            ),
        }
    }

    /// Number of 64-bit words the set spans (trailing zeros trimmed;
    /// inline sets report 2). Exposed for the interval/bitset codecs in
    /// `reach` and for property tests.
    #[inline]
    pub fn word_count(&self) -> usize {
        match &self.0 {
            Repr::Small(_) => 2,
            Repr::Big(w) => w.len(),
        }
    }

    /// Word `i` of the little-endian bit string (0 beyond the end).
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        match &self.0 {
            Repr::Small(b) => match i {
                0 => *b as u64,
                1 => (*b >> 64) as u64,
                _ => 0,
            },
            Repr::Big(w) => w.get(i).copied().unwrap_or(0),
        }
    }

    /// Heap bytes resident for this set (0 for inline sets; shared
    /// `Arc` storage is attributed in full).
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        match &self.0 {
            Repr::Small(_) => 0,
            Repr::Big(w) => w.len() * 8,
        }
    }

    /// Address of the shared heap allocation, if any — lets accounting
    /// code (e.g. [`crate::Reachability::resident_bytes`]) count storage
    /// shared across `Arc` clones exactly once.
    #[inline]
    pub(crate) fn heap_addr(&self) -> Option<usize> {
        match &self.0 {
            Repr::Small(_) => None,
            Repr::Big(w) => Some(w.as_ptr() as usize),
        }
    }

    /// Build from raw little-endian words (normalized to canonical form).
    pub(crate) fn from_words(words: Vec<u64>) -> Self {
        normalize(words)
    }

    /// Number of bytes a bit-string header for an `n`-node system occupies
    /// on the wire (the paper's tree-based worms carry one bit per node).
    #[inline]
    pub fn header_bytes(n_nodes: usize) -> usize {
        n_nodes.div_ceil(8)
    }
}

/// Owned ascending-order iterator over a mask's members.
pub struct NodeMaskIter {
    mask: NodeMask,
    word: usize,
    bits: u64,
}

impl Iterator for NodeMaskIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros();
                self.bits &= self.bits - 1;
                return Some(NodeId((self.word * 64) as u16 + tz as u16));
            }
            if self.word + 1 >= self.mask.word_count() {
                return None;
            }
            self.word += 1;
            self.bits = self.mask.word(self.word);
        }
    }
}

impl Default for NodeMask {
    fn default() -> Self {
        NodeMask::EMPTY
    }
}

impl fmt::Debug for NodeMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeMask{{")?;
        let mut first = true;
        for n in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", n.0)?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for NodeMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<NodeId> for NodeMask {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        NodeMask::from_nodes(iter)
    }
}

impl std::ops::BitOr for NodeMask {
    type Output = NodeMask;
    fn bitor(self, rhs: Self) -> Self {
        self.union(&rhs)
    }
}

impl std::ops::BitOr for &NodeMask {
    type Output = NodeMask;
    fn bitor(self, rhs: Self) -> NodeMask {
        self.union(rhs)
    }
}

impl std::ops::BitAnd for NodeMask {
    type Output = NodeMask;
    fn bitand(self, rhs: Self) -> Self {
        self.intersection(&rhs)
    }
}

impl std::ops::BitAnd for &NodeMask {
    type Output = NodeMask;
    fn bitand(self, rhs: Self) -> NodeMask {
        self.intersection(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        assert!(NodeMask::EMPTY.is_empty());
        assert_eq!(NodeMask::EMPTY.len(), 0);
        let m = NodeMask::single(NodeId(5));
        assert_eq!(m.len(), 1);
        assert!(m.contains(NodeId(5)));
        assert!(!m.contains(NodeId(4)));
    }

    #[test]
    fn all_has_exact_members() {
        let m = NodeMask::all(32);
        assert_eq!(m.len(), 32);
        assert!(m.contains(NodeId(0)));
        assert!(m.contains(NodeId(31)));
        assert!(!m.contains(NodeId(32)));
    }

    #[test]
    fn all_at_inline_capacity() {
        let m = NodeMask::all(128);
        assert_eq!(m.len(), 128);
        assert!(m.contains(NodeId(127)));
    }

    #[test]
    fn all_beyond_inline_capacity_spills() {
        for n in [129usize, 192, 1000, 10_000] {
            let m = NodeMask::all(n);
            assert_eq!(m.len(), n);
            assert!(m.contains(NodeId((n - 1) as u16)));
            assert!(!m.contains(NodeId(n as u16)));
            assert!(m.heap_bytes() > 0);
        }
    }

    #[test]
    fn set_algebra() {
        let a = NodeMask::from_nodes([NodeId(1), NodeId(2), NodeId(3)]);
        let b = NodeMask::from_nodes([NodeId(3), NodeId(4)]);
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b), NodeMask::single(NodeId(3)));
        assert_eq!(a.difference(&b), NodeMask::from_nodes([NodeId(1), NodeId(2)]));
        assert!(a.intersects(&b));
        assert!(!a.covers(&b));
        assert!(a.union(&b).covers(&a));
    }

    #[test]
    fn wide_set_algebra_and_canonical_collapse() {
        let a = NodeMask::from_nodes([NodeId(1), NodeId(300), NodeId(9000)]);
        let b = NodeMask::from_nodes([NodeId(1), NodeId(300)]);
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        assert!(a.intersects(&b));
        // Intersecting away every wide member must collapse to the
        // inline arm so equality with an inline-built set holds.
        let only_low = a.intersection(&NodeMask::all(128));
        assert_eq!(only_low, NodeMask::single(NodeId(1)));
        assert_eq!(only_low.heap_bytes(), 0);
        // Difference of equal wide sets is the (inline) empty set.
        assert!(a.difference(&a).is_empty());
        assert_eq!(a.difference(&a), NodeMask::EMPTY);
        // Inline and wide sets are never equal.
        assert_ne!(b, NodeMask::from_nodes([NodeId(1), NodeId(300), NodeId(301)]));
    }

    #[test]
    fn insert_promotes_and_remove_collapses() {
        let mut m = NodeMask::single(NodeId(7));
        assert_eq!(m.heap_bytes(), 0);
        m.insert(NodeId(500));
        assert!(m.heap_bytes() > 0);
        assert!(m.contains(NodeId(7)));
        assert!(m.contains(NodeId(500)));
        m.remove(NodeId(500));
        assert_eq!(m, NodeMask::single(NodeId(7)));
        assert_eq!(m.heap_bytes(), 0);
    }

    #[test]
    fn covers_is_reflexive_and_empty_is_covered() {
        let a = NodeMask::from_nodes([NodeId(7), NodeId(9)]);
        assert!(a.covers(&a));
        assert!(a.covers(&NodeMask::EMPTY));
        assert!(NodeMask::EMPTY.covers(&NodeMask::EMPTY));
        assert!(!NodeMask::EMPTY.covers(&a));
        // Mixed-arm covers.
        let w = NodeMask::from_nodes([NodeId(7), NodeId(9), NodeId(4000)]);
        assert!(w.covers(&a));
        assert!(!a.covers(&w));
    }

    #[test]
    fn iteration_in_order() {
        let a = NodeMask::from_nodes([NodeId(9), NodeId(1), NodeId(100)]);
        let v: Vec<u16> = a.iter().map(|n| n.0).collect();
        assert_eq!(v, vec![1, 9, 100]);
        assert_eq!(a.first(), Some(NodeId(1)));
        let w = NodeMask::from_nodes([NodeId(9000), NodeId(1), NodeId(300)]);
        let v: Vec<u16> = w.iter().map(|n| n.0).collect();
        assert_eq!(v, vec![1, 300, 9000]);
        assert_eq!(w.first(), Some(NodeId(1)));
    }

    #[test]
    fn remove_and_insert() {
        let mut m = NodeMask::all(4);
        m.remove(NodeId(2));
        assert_eq!(m.len(), 3);
        assert!(!m.contains(NodeId(2)));
        m.insert(NodeId(2));
        assert_eq!(m, NodeMask::all(4));
        // removing an absent member is a no-op
        m.remove(NodeId(99));
        assert_eq!(m, NodeMask::all(4));
        m.remove(NodeId(10_000));
        assert_eq!(m, NodeMask::all(4));
    }

    #[test]
    fn header_bytes_rounds_up() {
        assert_eq!(NodeMask::header_bytes(32), 4);
        assert_eq!(NodeMask::header_bytes(33), 5);
        assert_eq!(NodeMask::header_bytes(1), 1);
        assert_eq!(NodeMask::header_bytes(0), 0);
    }

    #[test]
    fn debug_format_lists_members() {
        let a = NodeMask::from_nodes([NodeId(0), NodeId(3)]);
        assert_eq!(format!("{a:?}"), "NodeMask{0,3}");
    }

    #[test]
    fn words_view_matches_membership() {
        let m = NodeMask::from_nodes([NodeId(0), NodeId(64), NodeId(130)]);
        assert_eq!(m.word(0), 1);
        assert_eq!(m.word(1), 1);
        assert_eq!(m.word(2), 1 << 2);
        assert_eq!(m.word(3), 0);
        assert_eq!(m.word_count(), 3);
        assert_eq!(NodeMask::single(NodeId(5)).word_count(), 2);
    }
}
