//! Structural metrics of analyzed networks, and fault/reconfiguration
//! support.
//!
//! The paper motivates irregular topologies by their operational
//! flexibility: "easy addition and deletion of nodes ... more amenable to
//! network reconfigurations and resistant to faults" (§1). This module
//! provides both the summary metrics the experiment reports use and
//! [`remove_link`] — fail one link and rebuild a valid topology, so a
//! whole reconfiguration (new BFS tree, new orientation, new routing
//! tables) can be exercised end to end.

use crate::error::TopologyError;
use crate::graph::{PortUse, Topology};
use crate::ids::{LinkId, SwitchId};
use crate::routing::{Phase, UNREACHABLE};
use crate::Network;

/// Summary of a network's routing structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkMetrics {
    /// Switch count.
    pub switches: usize,
    /// Node count.
    pub nodes: usize,
    /// Bidirectional inter-switch links.
    pub links: usize,
    /// Maximum minimal up*/down* distance over switch pairs.
    pub diameter: u16,
    /// Mean minimal up*/down* distance over distinct switch pairs.
    pub mean_distance: f64,
    /// Fraction of distinct switch pairs with ≥ 2 minimal first hops
    /// (adaptivity available at the source switch).
    pub adaptive_fraction: f64,
    /// Mean nodes per switch.
    pub nodes_per_switch: f64,
}

/// Compute the metrics of an analyzed network.
pub fn network_metrics(net: &Network) -> NetworkMetrics {
    let n = net.topo.num_switches();
    let mut diameter = 0u16;
    let mut sum = 0u64;
    let mut pairs = 0u64;
    let mut adaptive = 0u64;
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let (sa, sb) = (SwitchId(a as u16), SwitchId(b as u16));
            let d = net.routing.distance(sa, Phase::Up, sb);
            debug_assert_ne!(d, UNREACHABLE);
            diameter = diameter.max(d);
            sum += d as u64;
            pairs += 1;
            if net.routing.next_hops(sa, Phase::Up, sb).len() > 1 {
                adaptive += 1;
            }
        }
    }
    NetworkMetrics {
        switches: n,
        nodes: net.topo.num_nodes(),
        links: net.topo.num_links(),
        diameter,
        mean_distance: if pairs == 0 { 0.0 } else { sum as f64 / pairs as f64 },
        adaptive_fraction: if pairs == 0 { 0.0 } else { adaptive as f64 / pairs as f64 },
        nodes_per_switch: net.topo.avg_nodes_per_switch(),
    }
}

/// Remove one inter-switch link (a "link fault") and rebuild the
/// topology; ports at both ends become open. Fails with
/// [`TopologyError::Disconnected`] if the link was a bridge — exactly the
/// condition under which a real Autonet reconfiguration would partition.
pub fn remove_link(topo: &Topology, link: LinkId) -> Result<Topology, TopologyError> {
    if link.idx() >= topo.num_links() {
        return Err(TopologyError::Inconsistent("no such link"));
    }
    let mut switches: Vec<crate::graph::Switch> =
        topo.switches().map(|(_, s)| s.clone()).collect();
    let mut links = Vec::with_capacity(topo.num_links() - 1);
    for (li, l) in topo.links() {
        if li == link {
            // Open both endpoints.
            for side in 0..2u8 {
                let (s, p) = l.end(side);
                switches[s.idx()].ports[p.idx()] = PortUse::Open;
            }
            continue;
        }
        links.push(*l);
    }
    // Renumber: links after the removed one shift down by one; fix the
    // port references.
    for (new_idx, l) in links.iter().enumerate() {
        for side in 0..2u8 {
            let (s, p) = l.end(side);
            switches[s.idx()].ports[p.idx()] =
                PortUse::Link { link: LinkId(new_idx as u32), side };
        }
    }
    let hosts = topo.hosts().map(|(_, h)| h).collect();
    Topology::from_parts(switches, links, hosts)
}

/// Convenience: does removing this link keep the network connected?
pub fn link_is_redundant(topo: &Topology, link: LinkId) -> bool {
    remove_link(topo, link).is_ok()
}

/// The up*/down* turn restriction costs some pairs their shortest
/// graph-theoretic route. Returns the fraction of switch pairs whose
/// legal minimal distance exceeds their unrestricted hop distance —
/// a measure of the routing algorithm's inefficiency on this topology.
pub fn updown_stretch_fraction(net: &Network) -> f64 {
    let n = net.topo.num_switches();
    // Unrestricted BFS distances.
    let mut stretched = 0u64;
    let mut pairs = 0u64;
    for src in 0..n {
        let mut dist = vec![u16::MAX; n];
        dist[src] = 0;
        let mut q = std::collections::VecDeque::from([src]);
        while let Some(s) = q.pop_front() {
            for (_, peer, _) in net.topo.neighbors(SwitchId(s as u16)) {
                if dist[peer.idx()] == u16::MAX {
                    dist[peer.idx()] = dist[s] + 1;
                    q.push_back(peer.idx());
                }
            }
        }
        for (t, &d) in dist.iter().enumerate() {
            if t == src {
                continue;
            }
            pairs += 1;
            let legal = net
                .routing
                .distance(SwitchId(src as u16), Phase::Up, SwitchId(t as u16));
            if legal > d {
                stretched += 1;
            }
        }
    }
    if pairs == 0 {
        0.0
    } else {
        stretched as f64 / pairs as f64
    }
}

/// Re-export used by [`updown_stretch_fraction`] signature readers.
pub use crate::routing::UNREACHABLE as UNREACHABLE_DISTANCE;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TopologyBuilder;
    use crate::zoo;

    #[test]
    fn chain_metrics() {
        let net = Network::analyze(zoo::chain(4).unwrap()).unwrap();
        let m = network_metrics(&net);
        assert_eq!(m.switches, 4);
        assert_eq!(m.diameter, 3);
        assert_eq!(m.links, 3);
        assert_eq!(m.adaptive_fraction, 0.0, "a chain has no route choice");
        assert!((m.mean_distance - (3.0 + 2.0 + 2.0 + 1.0 + 1.0 + 1.0) * 2.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn removing_a_ring_link_keeps_connectivity() {
        // Square ring: every link is redundant.
        let mut b = TopologyBuilder::new();
        let s: Vec<_> = (0..4).map(|_| b.add_switch(4)).collect();
        for i in 0..4 {
            b.add_link(s[i], s[(i + 1) % 4]).unwrap();
        }
        for &sw in &s {
            b.add_host(sw).unwrap();
        }
        let t = b.build().unwrap();
        for li in 0..t.num_links() {
            assert!(link_is_redundant(&t, LinkId(li as u32)), "link {li}");
            let t2 = remove_link(&t, LinkId(li as u32)).unwrap();
            assert_eq!(t2.num_links(), 3);
            // The degraded network still analyzes and routes.
            let net2 = Network::analyze(t2).unwrap();
            assert!(net2.routing.fully_connected());
        }
    }

    #[test]
    fn removing_a_bridge_is_rejected() {
        let t = zoo::chain(3).unwrap();
        assert!(!link_is_redundant(&t, LinkId(0)));
        assert!(matches!(
            remove_link(&t, LinkId(0)),
            Err(TopologyError::Disconnected { .. })
        ));
    }

    #[test]
    fn remove_link_renumbers_consistently() {
        let mut b = TopologyBuilder::new();
        let s: Vec<_> = (0..3).map(|_| b.add_switch(6)).collect();
        b.add_link(s[0], s[1]).unwrap(); // L0
        b.add_link(s[1], s[2]).unwrap(); // L1
        b.add_link(s[0], s[2]).unwrap(); // L2
        for &sw in &s {
            b.add_host(sw).unwrap();
        }
        let t = b.build().unwrap();
        let t2 = remove_link(&t, LinkId(1)).unwrap();
        t2.validate().unwrap();
        assert_eq!(t2.num_links(), 2);
        // Every remaining link's ports point back correctly (validate
        // checks this; also ensure both expected edges survive).
        let pairs: Vec<(u16, u16)> = t2
            .links()
            .map(|(_, l)| (l.a.0 .0.min(l.b.0 .0), l.a.0 .0.max(l.b.0 .0)))
            .collect();
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(0, 2)));
    }

    #[test]
    fn stretch_fraction_bounded() {
        let net = Network::analyze(zoo::paper_example().unwrap()).unwrap();
        let f = updown_stretch_fraction(&net);
        assert!((0.0..=1.0).contains(&f));
        // A chain has no stretch (tree network: up*/down* is exact).
        let chain = Network::analyze(zoo::chain(5).unwrap()).unwrap();
        assert_eq!(updown_stretch_fraction(&chain), 0.0);
    }

    #[test]
    fn out_of_range_link_rejected() {
        let t = zoo::chain(2).unwrap();
        assert!(remove_link(&t, LinkId(99)).is_err());
    }
}
