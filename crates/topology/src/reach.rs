//! Per-port reachability strings for tree-based multidestination worms
//! (§3.2.3, Fig. 4(c)).
//!
//! Every switch associates with each of its *downward* output ports (ports
//! leading down to another switch, or to a locally attached host) an
//! *n*-bit reachability string: the set of nodes reachable through that
//! port using only further down traversals — exactly the restriction the
//! base up*/down* routing imposes once a worm starts descending.
//!
//! A switch *covers* a destination set if the union of its downward-port
//! strings is a superset of the set; a tree-based worm climbs up links
//! until it reaches a covering switch, then fans out downward.

use crate::error::TopologyError;
use crate::fault::FaultStatus;
use crate::graph::{PortUse, Topology};
use crate::ids::{PortIdx, SwitchId};
use crate::mask::NodeMask;
use crate::updown::UpDown;

/// Reachability strings for every switch in a topology.
#[derive(Debug, Clone)]
pub struct Reachability {
    ports_per_switch: usize,
    /// `port_reach[s * P + p]` — nodes reachable down through port `p` of
    /// switch `s`; `EMPTY` for up ports and open ports.
    port_reach: Vec<NodeMask>,
    /// `cover[s]` — union of all downward-port strings of `s` (the paper's
    /// "total reachability string").
    cover: Vec<NodeMask>,
    /// `descend[s]` — nodes reachable from `s` via down-only traversals,
    /// including the hosts directly attached to `s`.
    descend: Vec<NodeMask>,
}

impl Reachability {
    /// Compute all strings.
    ///
    /// `descend(s) = nodes_at(s) ∪ ⋃ {descend(c) : s —down→ c}` — the down
    /// graph is acyclic, so a reverse-level-order pass suffices.
    pub fn compute(topo: &Topology, updown: &UpDown) -> Result<Self, TopologyError> {
        Self::compute_inner(topo, updown, None)
    }

    /// Compute strings over the surviving graph only: dead switches get
    /// empty strings everywhere, and dead links (or links into dead
    /// switches) contribute nothing to any port string, so a tree worm
    /// never fans out across a failed component.
    pub fn compute_masked(
        topo: &Topology,
        updown: &UpDown,
        status: &FaultStatus,
    ) -> Result<Self, TopologyError> {
        Self::compute_inner(topo, updown, Some(status))
    }

    fn compute_inner(
        topo: &Topology,
        updown: &UpDown,
        status: Option<&FaultStatus>,
    ) -> Result<Self, TopologyError> {
        let n = topo.num_switches();
        let pmax = topo
            .switches()
            .map(|(_, sw)| sw.num_ports())
            .max()
            .unwrap_or(0);
        let switch_alive = |s: SwitchId| status.is_none_or(|st| st.switch_up(s));
        let link_alive = |l| status.is_none_or(|st| st.link_up(topo, l));

        // Order switches by decreasing (level, id): every down traversal
        // strictly decreases that key's order position... actually a down
        // traversal increases level or keeps level while increasing id, so
        // processing in decreasing (level, id) order guarantees children
        // before parents.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&s| {
            let sid = SwitchId(s as u16);
            std::cmp::Reverse((updown.level(sid), sid.0))
        });

        let mut descend = vec![NodeMask::EMPTY; n];
        for &si in &order {
            let s = SwitchId(si as u16);
            if !switch_alive(s) {
                continue; // dead switch reaches nothing, not even its hosts
            }
            let mut m = topo.nodes_at(s);
            for (l, peer, _) in updown.down_links(topo, s) {
                if link_alive(l) {
                    m = m.union(descend[peer.idx()]);
                }
            }
            descend[si] = m;
        }

        let mut port_reach = vec![NodeMask::EMPTY; n * pmax];
        let mut cover = vec![NodeMask::EMPTY; n];
        for (s, sw) in topo.switches() {
            if !switch_alive(s) {
                continue;
            }
            let mut c = NodeMask::EMPTY;
            for (pi, pu) in sw.ports.iter().enumerate() {
                let m = match pu {
                    PortUse::Host(node) => NodeMask::single(*node),
                    PortUse::Link { link, .. } => {
                        if !link_alive(*link) || updown.is_up_traversal(topo, *link, s)? {
                            NodeMask::EMPTY
                        } else {
                            let peer = {
                                let l = topo.link(*link);
                                let side = l
                                    .side_of(s)
                                    .ok_or(TopologyError::Inconsistent("switch not on link"))?;
                                l.end(1 - side).0
                            };
                            descend[peer.idx()]
                        }
                    }
                    PortUse::Open => NodeMask::EMPTY,
                };
                port_reach[s.idx() * pmax + pi] = m;
                c = c.union(m);
            }
            cover[s.idx()] = c;
        }

        Ok(Reachability { ports_per_switch: pmax, port_reach, cover, descend })
    }

    /// The reachability string of one output port (empty for up/open ports).
    #[inline]
    pub fn port(&self, s: SwitchId, p: PortIdx) -> NodeMask {
        self.port_reach[s.idx() * self.ports_per_switch + p.idx()]
    }

    /// The switch's total reachability string (union over downward ports).
    #[inline]
    pub fn cover(&self, s: SwitchId) -> NodeMask {
        self.cover[s.idx()]
    }

    /// Nodes reachable from `s` via down-only traversal (= `cover(s)` —
    /// exposed separately for clarity in planners).
    #[inline]
    pub fn descend(&self, s: SwitchId) -> NodeMask {
        self.descend[s.idx()]
    }

    /// True if `s` can deliver the whole destination set going only down —
    /// the covering test a tree-based worm performs at each switch of its
    /// up phase.
    #[inline]
    pub fn covers(&self, s: SwitchId, dests: NodeMask) -> bool {
        self.cover[s.idx()].covers(dests)
    }

    /// Partition a destination header across the downward ports of `s`:
    /// each destination is assigned to exactly **one** port that reaches it
    /// (the lowest-indexed such port — a deterministic priority encoder, as
    /// switch hardware would implement). Returns `(port, sub-header)` pairs
    /// in port order, covering `dests` exactly.
    ///
    /// Panics in debug builds if `s` does not cover `dests`.
    pub fn partition(&self, topo: &Topology, s: SwitchId, dests: NodeMask) -> Vec<(PortIdx, NodeMask)> {
        debug_assert!(self.covers(s, dests), "partition at non-covering switch");
        let mut remaining = dests;
        let mut out = Vec::new();
        let nports = topo.switch(s).num_ports();
        for pi in 0..nports {
            if remaining.is_empty() {
                break;
            }
            let p = PortIdx(pi as u8);
            let take = self.port(s, p).intersection(remaining);
            if !take.is_empty() {
                out.push((p, take));
                remaining = remaining.difference(take);
            }
        }
        debug_assert!(remaining.is_empty());
        out
    }

    /// Total bits of reachability state stored at switch `s` — the
    /// quantity behind the paper's §3.3 observation that bit-string
    /// decoding state grows with system size. (`n_nodes` bits per
    /// downward port.)
    pub fn state_bits(&self, topo: &Topology, updown: &UpDown, s: SwitchId, n_nodes: usize) -> usize {
        updown.downward_ports(topo, s).count() * n_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TopologyBuilder;
    use crate::ids::NodeId;

    /// Root S0 (hosts n0), children S1 (n1) and S2 (n2), S3 under both
    /// (n3), plus cross link S1–S2.
    fn fixture() -> (Topology, UpDown, Reachability) {
        let mut b = TopologyBuilder::new();
        let s: Vec<_> = (0..4).map(|_| b.add_switch(8)).collect();
        b.add_link(s[0], s[1]).unwrap();
        b.add_link(s[0], s[2]).unwrap();
        b.add_link(s[1], s[3]).unwrap();
        b.add_link(s[2], s[3]).unwrap();
        b.add_link(s[1], s[2]).unwrap();
        for &sw in &s {
            b.add_host(sw).unwrap();
        }
        let t = b.build().unwrap();
        let ud = UpDown::compute(&t, s[0]).unwrap();
        let r = Reachability::compute(&t, &ud).unwrap();
        (t, ud, r)
    }

    #[test]
    fn root_covers_everything() {
        let (t, _, r) = fixture();
        assert_eq!(r.cover(SwitchId(0)), NodeMask::all(t.num_nodes()));
    }

    #[test]
    fn leaf_covers_only_local_hosts() {
        let (_, _, r) = fixture();
        assert_eq!(r.cover(SwitchId(3)), NodeMask::single(NodeId(3)));
    }

    #[test]
    fn cross_link_extends_cover() {
        let (_, _, r) = fixture();
        // S1 reaches n1 (local), n3 (down via S3) and n2 (down via the
        // cross link S1->S2, whose up end is S1).
        let c = r.cover(SwitchId(1));
        assert!(c.contains(NodeId(1)));
        assert!(c.contains(NodeId(2)));
        assert!(c.contains(NodeId(3)));
        assert!(!c.contains(NodeId(0)));
        // S2's cross-link side is an up port: S2 covers only n2 and n3.
        let c2 = r.cover(SwitchId(2));
        assert_eq!(c2, NodeMask::from_nodes([NodeId(2), NodeId(3)]));
    }

    #[test]
    fn up_ports_have_empty_strings() {
        let (t, ud, r) = fixture();
        for (sid, sw) in t.switches() {
            for pi in 0..sw.num_ports() {
                let p = PortIdx(pi as u8);
                if let PortUse::Link { link, .. } = sw.ports[pi] {
                    if ud.is_up_traversal(&t, link, sid).unwrap() {
                        assert!(r.port(sid, p).is_empty());
                    }
                }
            }
        }
    }

    #[test]
    fn host_port_string_is_singleton() {
        let (t, _, r) = fixture();
        for (n, h) in t.hosts() {
            assert_eq!(r.port(h.switch, h.port), NodeMask::single(n));
        }
    }

    #[test]
    fn partition_covers_exactly_once() {
        let (t, _, r) = fixture();
        let dests = NodeMask::from_nodes([NodeId(1), NodeId(2), NodeId(3)]);
        let parts = r.partition(&t, SwitchId(0), dests);
        let mut total = NodeMask::EMPTY;
        for (_, m) in &parts {
            assert!(total.intersection(*m).is_empty(), "duplicate delivery");
            total = total.union(*m);
        }
        assert_eq!(total, dests);
    }

    #[test]
    fn partition_prefers_lowest_port() {
        let (t, _, r) = fixture();
        // n3 is reachable from S0 via both S1 and S2 subtrees; the
        // partition must pick exactly one (the lower-indexed port).
        let parts = r.partition(&t, SwitchId(0), NodeMask::single(NodeId(3)));
        assert_eq!(parts.len(), 1);
    }

    #[test]
    fn state_bits_counts_downward_ports() {
        let (t, ud, r) = fixture();
        // S3: only downward port is its host port -> n bits.
        assert_eq!(r.state_bits(&t, &ud, SwitchId(3), t.num_nodes()), 4);
        // S0: two down links + one host = 3 downward ports.
        assert_eq!(r.state_bits(&t, &ud, SwitchId(0), t.num_nodes()), 12);
    }

    #[test]
    fn descend_equals_cover() {
        let (t, _, r) = fixture();
        for (s, _) in t.switches() {
            assert_eq!(r.descend(s), r.cover(s));
        }
    }
}
