//! Per-port reachability strings for tree-based multidestination worms
//! (§3.2.3, Fig. 4(c)).
//!
//! Every switch associates with each of its *downward* output ports (ports
//! leading down to another switch, or to a locally attached host) an
//! *n*-bit reachability string: the set of nodes reachable through that
//! port using only further down traversals — exactly the restriction the
//! base up*/down* routing imposes once a worm starts descending.
//!
//! A switch *covers* a destination set if the union of its downward-port
//! strings is a superset of the set; a tree-based worm climbs up links
//! until it reaches a covering switch, then fans out downward.
//!
//! # Storage: [`ReachSet`]
//!
//! The paper stores each string literally as *n* bits per downward port,
//! which is O(switches · ports · nodes) — about 2 GB of strings for a
//! 1000-switch / 10k-host fabric. Observed strings are far from random:
//! a port deep in the tree reaches the few hosts of one subtree, and host
//! ids inside one subtree cluster into short intervals. [`ReachSet`]
//! therefore keeps each string in whichever of two encodings is smaller:
//!
//! * **Dense** — the literal [`NodeMask`] bit string. Systems at or below
//!   [`NodeMask::INLINE_BITS`] nodes (every paper-scale experiment) always
//!   use this arm, so the historical representation is untouched there.
//! * **Runs** — sorted, disjoint, inclusive `(start, end)` node-id
//!   intervals at 4 bytes each, chosen when that beats the bitset.
//!
//! The covering test and the header partition work directly on the run
//! encoding (two-pointer walks over the destination header's set bits),
//! so giant fabrics never materialize dense strings on the hot path.

use crate::error::TopologyError;
use crate::fault::FaultStatus;
use crate::graph::{PortUse, Topology};
use crate::ids::{NodeId, PortIdx, SwitchId};
use crate::mask::NodeMask;
use crate::updown::UpDown;
use std::borrow::Borrow;
use std::sync::Arc;

/// One reachability string, in the smaller of two encodings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReachSet {
    /// Literal bit string (always used for sets confined below
    /// [`NodeMask::INLINE_BITS`], where it is a free inline `u128`).
    Dense(NodeMask),
    /// Sorted disjoint inclusive `(start, end)` node-id intervals.
    Runs(Arc<[(u16, u16)]>),
}

impl ReachSet {
    /// The empty string.
    pub const EMPTY: ReachSet = ReachSet::Dense(NodeMask::EMPTY);

    /// Encode a mask, picking whichever representation is smaller.
    /// Deterministic: equal sets always get the identical encoding, so
    /// derived `PartialEq` is set equality.
    pub fn from_mask(m: &NodeMask) -> Self {
        if m.heap_bytes() == 0 {
            // Inline masks cost nothing; keep the historical bitset.
            return ReachSet::Dense(m.clone());
        }
        let mut runs: Vec<(u16, u16)> = Vec::new();
        for n in m.iter() {
            match runs.last_mut() {
                Some((_, end)) if *end as u32 + 1 == n.0 as u32 => *end = n.0,
                _ => runs.push((n.0, n.0)),
            }
        }
        if runs.len() * std::mem::size_of::<(u16, u16)>() < m.heap_bytes() {
            ReachSet::Runs(runs.into())
        } else {
            ReachSet::Dense(m.clone())
        }
    }

    /// Materialize the full bit string.
    pub fn to_mask(&self) -> NodeMask {
        match self {
            ReachSet::Dense(m) => m.clone(),
            ReachSet::Runs(runs) => {
                let Some(&(_, last)) = runs.last() else {
                    return NodeMask::EMPTY;
                };
                let mut words = vec![0u64; last as usize / 64 + 1];
                for &(a, b) in runs.iter() {
                    let (w0, w1) = (a as usize / 64, b as usize / 64);
                    for (w, word) in words.iter_mut().enumerate().take(w1 + 1).skip(w0) {
                        let lo = (a as usize).max(w * 64) - w * 64;
                        let hi = (b as usize).min(w * 64 + 63) - w * 64;
                        let bits = if hi - lo == 63 {
                            u64::MAX
                        } else {
                            ((1u64 << (hi - lo + 1)) - 1) << lo
                        };
                        *word |= bits;
                    }
                }
                NodeMask::from_words(words)
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, node: NodeId) -> bool {
        match self {
            ReachSet::Dense(m) => m.contains(node),
            ReachSet::Runs(runs) => {
                let i = runs.partition_point(|&(a, _)| a <= node.0);
                i > 0 && runs[i - 1].1 >= node.0
            }
        }
    }

    /// True if every member of `m` is in this set — the covering test,
    /// O(|m| + runs) in the interval arm.
    pub fn covers_mask(&self, m: &NodeMask) -> bool {
        match self {
            ReachSet::Dense(d) => d.covers(m),
            ReachSet::Runs(runs) => {
                let mut i = 0;
                for n in m.iter() {
                    while i < runs.len() && runs[i].1 < n.0 {
                        i += 1;
                    }
                    if i == runs.len() || runs[i].0 > n.0 {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// The members of `m` inside this set, as a mask — what a switch
    /// peels off a worm header for one output port.
    pub fn intersect_mask(&self, m: &NodeMask) -> NodeMask {
        match self {
            ReachSet::Dense(d) => d.intersection(m),
            ReachSet::Runs(runs) => {
                let mut words = vec![0u64; m.word_count()];
                let mut i = 0;
                for n in m.iter() {
                    while i < runs.len() && runs[i].1 < n.0 {
                        i += 1;
                    }
                    if i < runs.len() && runs[i].0 <= n.0 {
                        words[n.idx() / 64] |= 1u64 << (n.idx() % 64);
                    }
                }
                NodeMask::from_words(words)
            }
        }
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        match self {
            ReachSet::Dense(m) => m.is_empty(),
            ReachSet::Runs(runs) => runs.is_empty(),
        }
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        match self {
            ReachSet::Dense(m) => m.len(),
            ReachSet::Runs(runs) => {
                runs.iter().map(|&(a, b)| (b - a) as usize + 1).sum()
            }
        }
    }

    /// Heap bytes behind this set (shared storage attributed in full).
    pub fn heap_bytes(&self) -> usize {
        match self {
            ReachSet::Dense(m) => m.heap_bytes(),
            ReachSet::Runs(runs) => std::mem::size_of_val(&runs[..]),
        }
    }

    /// Address of the shared heap allocation, for count-once accounting.
    fn heap_addr(&self) -> Option<usize> {
        match self {
            ReachSet::Dense(m) => m.heap_addr(),
            ReachSet::Runs(runs) => Some(runs.as_ptr() as usize),
        }
    }
}

/// Reachability strings for every switch in a topology.
///
/// `cover[s]` (the paper's "total reachability string", also the down-only
/// descend set — the two coincide: both are the hosts of `s` plus the
/// union of the down-peer covers) and one string per port. Strings are
/// stored as [`ReachSet`]s; see the module docs for the encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct Reachability {
    ports_per_switch: usize,
    n_nodes: usize,
    /// `port_reach[s * P + p]` — nodes reachable down through port `p` of
    /// switch `s`; empty for up ports and open ports. Down-link ports
    /// share the peer's cover encoding (`Arc` clone, not a copy).
    port_reach: Vec<ReachSet>,
    /// `cover[s]` — union of all downward-port strings of `s`.
    cover: Vec<ReachSet>,
}

impl Reachability {
    /// Compute all strings.
    ///
    /// `cover(s) = nodes_at(s) ∪ ⋃ {cover(c) : s —down→ c}` — the down
    /// graph is acyclic, so a reverse-level-order pass suffices.
    pub fn compute(topo: &Topology, updown: &UpDown) -> Result<Self, TopologyError> {
        Self::compute_inner(topo, updown, None)
    }

    /// Compute strings over the surviving graph only: dead switches get
    /// empty strings everywhere, and dead links (or links into dead
    /// switches) contribute nothing to any port string, so a tree worm
    /// never fans out across a failed component.
    pub fn compute_masked(
        topo: &Topology,
        updown: &UpDown,
        status: &FaultStatus,
    ) -> Result<Self, TopologyError> {
        Self::compute_inner(topo, updown, Some(status))
    }

    fn compute_inner(
        topo: &Topology,
        updown: &UpDown,
        status: Option<&FaultStatus>,
    ) -> Result<Self, TopologyError> {
        let n = topo.num_switches();
        let pmax = topo
            .switches()
            .map(|(_, sw)| sw.num_ports())
            .max()
            .unwrap_or(0);
        let switch_alive = |s: SwitchId| status.is_none_or(|st| st.switch_up(s));
        let link_alive = |l| status.is_none_or(|st| st.link_up(topo, l));

        // Process switches in decreasing (level, id): a down traversal
        // increases the level, or keeps it while increasing the id, so
        // this guarantees children before parents.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&s| {
            let sid = SwitchId(s as u16);
            std::cmp::Reverse((updown.level(sid), sid.0))
        });

        let mut cover_mask = vec![NodeMask::EMPTY; n];
        for &si in &order {
            let s = SwitchId(si as u16);
            if !switch_alive(s) {
                continue; // dead switch reaches nothing, not even its hosts
            }
            let mut m = topo.nodes_at(s);
            for (l, peer, _) in updown.down_links(topo, s) {
                if link_alive(l) {
                    m = m.union(&cover_mask[peer.idx()]);
                }
            }
            cover_mask[si] = m;
        }
        let cover: Vec<ReachSet> = cover_mask.iter().map(ReachSet::from_mask).collect();

        let mut port_reach = vec![ReachSet::EMPTY; n * pmax];
        for (s, sw) in topo.switches() {
            if !switch_alive(s) {
                continue;
            }
            for (pi, pu) in sw.ports.iter().enumerate() {
                let r = match pu {
                    PortUse::Host(node) => {
                        ReachSet::from_mask(&NodeMask::single(*node))
                    }
                    PortUse::Link { link, .. } => {
                        if !link_alive(*link) || updown.is_up_traversal(topo, *link, s)? {
                            ReachSet::EMPTY
                        } else {
                            let peer = {
                                let l = topo.link(*link);
                                let side = l
                                    .side_of(s)
                                    .ok_or(TopologyError::Inconsistent("switch not on link"))?;
                                l.end(1 - side).0
                            };
                            cover[peer.idx()].clone()
                        }
                    }
                    PortUse::Open => ReachSet::EMPTY,
                };
                port_reach[s.idx() * pmax + pi] = r;
            }
        }

        Ok(Reachability { ports_per_switch: pmax, n_nodes: topo.num_nodes(), port_reach, cover })
    }

    /// Recompute after faults, touching only switches whose inputs
    /// actually changed: a switch is recomputed iff its liveness flipped,
    /// an incident link's (alive, direction) contribution changed between
    /// the old and new orientations, or a down-peer's cover changed.
    /// Everything else reuses the previous encodings (`Arc` clones).
    ///
    /// Returns the new strings plus the number of switches recomputed
    /// (exposed so tests and callers can observe the savings).
    ///
    /// Equivalent to [`Self::compute_masked`] with `(topo, updown_new,
    /// status_new)` — the encoder is deterministic, so the results are
    /// structurally identical.
    pub fn recompute_incremental(
        &self,
        topo: &Topology,
        updown_new: &UpDown,
        status_new: &FaultStatus,
        updown_old: &UpDown,
        status_old: Option<&FaultStatus>,
    ) -> Result<(Self, usize), TopologyError> {
        let n = topo.num_switches();
        let pmax = self.ports_per_switch;
        let alive_old = |s: SwitchId| status_old.is_none_or(|st| st.switch_up(s));
        let link_old = |l| status_old.is_none_or(|st| st.link_up(topo, l));

        // A port's contribution descriptor: None if the link is dead,
        // else whether the traversal out of `s` goes down.
        let contrib = |ud: &UpDown, alive: bool, l, s| -> Result<Option<bool>, TopologyError> {
            if !alive {
                return Ok(None);
            }
            Ok(Some(!ud.is_up_traversal(topo, l, s)?))
        };

        let mut locally_dirty = vec![false; n];
        for (s, _) in topo.switches() {
            let (ao, an) = (alive_old(s), status_new.switch_up(s));
            if ao != an {
                locally_dirty[s.idx()] = true;
                continue;
            }
            if !an {
                continue; // dead before and after: EMPTY stays EMPTY
            }
            for (l, _, _) in topo.neighbors(s) {
                let old = contrib(updown_old, link_old(l), l, s)?;
                let new = contrib(updown_new, status_new.link_up(topo, l), l, s)?;
                if old != new {
                    locally_dirty[s.idx()] = true;
                    break;
                }
            }
        }

        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&s| {
            let sid = SwitchId(s as u16);
            std::cmp::Reverse((updown_new.level(sid), sid.0))
        });

        let mut cover = vec![ReachSet::EMPTY; n];
        // Materialized masks of recomputed switches (clean ones are
        // materialized lazily, at most once).
        let mut masks: Vec<Option<NodeMask>> = vec![None; n];
        let mut changed = vec![false; n];
        let mut recomputed = 0usize;
        for &si in &order {
            let s = SwitchId(si as u16);
            if !status_new.switch_up(s) {
                changed[si] = !self.cover[si].is_empty();
                continue;
            }
            let needs = locally_dirty[si]
                || updown_new
                    .down_links(topo, s)
                    .any(|(l, peer, _)| status_new.link_up(topo, l) && changed[peer.idx()]);
            if !needs {
                cover[si] = self.cover[si].clone();
                continue;
            }
            recomputed += 1;
            let mut m = topo.nodes_at(s);
            for (l, peer, _) in updown_new.down_links(topo, s) {
                if status_new.link_up(topo, l) {
                    let pm = masks[peer.idx()]
                        .get_or_insert_with(|| cover[peer.idx()].to_mask());
                    m = m.union(&*pm);
                }
            }
            let enc = ReachSet::from_mask(&m);
            changed[si] = enc != self.cover[si];
            masks[si] = Some(m);
            cover[si] = enc;
        }

        let mut port_reach = vec![ReachSet::EMPTY; n * pmax];
        for (s, sw) in topo.switches() {
            let si = s.idx();
            if !status_new.switch_up(s) {
                continue;
            }
            let needs = locally_dirty[si]
                || updown_new
                    .down_links(topo, s)
                    .any(|(l, peer, _)| status_new.link_up(topo, l) && changed[peer.idx()]);
            if !needs {
                port_reach[si * pmax..si * pmax + sw.num_ports()]
                    .clone_from_slice(&self.port_reach[si * pmax..si * pmax + sw.num_ports()]);
                continue;
            }
            for (pi, pu) in sw.ports.iter().enumerate() {
                let r = match pu {
                    PortUse::Host(node) => ReachSet::from_mask(&NodeMask::single(*node)),
                    PortUse::Link { link, .. } => {
                        if !status_new.link_up(topo, *link)
                            || updown_new.is_up_traversal(topo, *link, s)?
                        {
                            ReachSet::EMPTY
                        } else {
                            let l = topo.link(*link);
                            let side = l
                                .side_of(s)
                                .ok_or(TopologyError::Inconsistent("switch not on link"))?;
                            cover[l.end(1 - side).0.idx()].clone()
                        }
                    }
                    PortUse::Open => ReachSet::EMPTY,
                };
                port_reach[si * pmax + pi] = r;
            }
        }

        Ok((
            Reachability { ports_per_switch: pmax, n_nodes: self.n_nodes, port_reach, cover },
            recomputed,
        ))
    }

    /// The reachability string of one output port (empty for up/open
    /// ports), materialized as a bit string. Prefer [`Self::port_set`]
    /// on hot paths at giant scale.
    #[inline]
    pub fn port(&self, s: SwitchId, p: PortIdx) -> NodeMask {
        self.port_reach[s.idx() * self.ports_per_switch + p.idx()].to_mask()
    }

    /// The stored encoding of one port's string.
    #[inline]
    pub fn port_set(&self, s: SwitchId, p: PortIdx) -> &ReachSet {
        &self.port_reach[s.idx() * self.ports_per_switch + p.idx()]
    }

    /// The switch's total reachability string (union over downward
    /// ports), materialized.
    #[inline]
    pub fn cover(&self, s: SwitchId) -> NodeMask {
        self.cover[s.idx()].to_mask()
    }

    /// The stored encoding of the switch's total string.
    #[inline]
    pub fn cover_set(&self, s: SwitchId) -> &ReachSet {
        &self.cover[s.idx()]
    }

    /// Nodes reachable from `s` via down-only traversal (= `cover(s)` —
    /// exposed separately for clarity in planners).
    #[inline]
    pub fn descend(&self, s: SwitchId) -> NodeMask {
        self.cover(s)
    }

    /// True if `s` can deliver the whole destination set going only down —
    /// the covering test a tree-based worm performs at each switch of its
    /// up phase. Runs directly on the stored encoding.
    #[inline]
    pub fn covers(&self, s: SwitchId, dests: impl Borrow<NodeMask>) -> bool {
        self.cover[s.idx()].covers_mask(dests.borrow())
    }

    /// The subset of `dests` that `s` can deliver going only down — the
    /// header bits a descending branch peels off. Runs directly on the
    /// stored encoding.
    #[inline]
    pub fn take_covered(&self, s: SwitchId, dests: &NodeMask) -> NodeMask {
        self.cover[s.idx()].intersect_mask(dests)
    }

    /// Partition a destination header across the downward ports of `s`:
    /// each destination is assigned to exactly **one** port that reaches it
    /// (the lowest-indexed such port — a deterministic priority encoder, as
    /// switch hardware would implement). Returns `(port, sub-header)` pairs
    /// in port order, covering `dests` exactly.
    ///
    /// Panics in debug builds if `s` does not cover `dests`.
    pub fn partition(
        &self,
        topo: &Topology,
        s: SwitchId,
        dests: impl Borrow<NodeMask>,
    ) -> Vec<(PortIdx, NodeMask)> {
        let mut remaining = dests.borrow().clone();
        debug_assert!(self.covers(s, &remaining), "partition at non-covering switch");
        let mut out = Vec::new();
        let nports = topo.switch(s).num_ports();
        for pi in 0..nports {
            if remaining.is_empty() {
                break;
            }
            let p = PortIdx(pi as u8);
            let take = self.port_set(s, p).intersect_mask(&remaining);
            if !take.is_empty() {
                remaining = remaining.difference(&take);
                out.push((p, take));
            }
        }
        debug_assert!(remaining.is_empty());
        out
    }

    /// Total bits of reachability state stored at switch `s` — the
    /// quantity behind the paper's §3.3 observation that bit-string
    /// decoding state grows with system size. (`n_nodes` bits per
    /// downward port.)
    pub fn state_bits(&self, topo: &Topology, updown: &UpDown, s: SwitchId, n_nodes: usize) -> usize {
        updown.downward_ports(topo, s).count() * n_nodes
    }

    /// Heap bytes resident across all stored strings, with storage
    /// shared between ports (down-link ports alias the peer's cover)
    /// counted exactly once.
    pub fn resident_bytes(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut total = (self.port_reach.len() + self.cover.len())
            * std::mem::size_of::<ReachSet>();
        for r in self.port_reach.iter().chain(self.cover.iter()) {
            match r.heap_addr() {
                Some(addr) if !seen.insert(addr) => {}
                Some(_) => total += r.heap_bytes(),
                None => {}
            }
        }
        total
    }

    /// Bytes the same strings would occupy stored literally as *n*-bit
    /// strings (the paper's layout, one bit string per stored set) —
    /// the baseline the run encoding is measured against.
    pub fn dense_equivalent_bytes(&self) -> usize {
        (self.port_reach.len() + self.cover.len()) * NodeMask::header_bytes(self.n_nodes)
    }

    /// Number of nodes in the system these strings describe.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TopologyBuilder;
    use crate::ids::NodeId;

    /// Root S0 (hosts n0), children S1 (n1) and S2 (n2), S3 under both
    /// (n3), plus cross link S1–S2.
    fn fixture() -> (Topology, UpDown, Reachability) {
        let mut b = TopologyBuilder::new();
        let s: Vec<_> = (0..4).map(|_| b.add_switch(8)).collect();
        b.add_link(s[0], s[1]).unwrap();
        b.add_link(s[0], s[2]).unwrap();
        b.add_link(s[1], s[3]).unwrap();
        b.add_link(s[2], s[3]).unwrap();
        b.add_link(s[1], s[2]).unwrap();
        for &sw in &s {
            b.add_host(sw).unwrap();
        }
        let t = b.build().unwrap();
        let ud = UpDown::compute(&t, s[0]).unwrap();
        let r = Reachability::compute(&t, &ud).unwrap();
        (t, ud, r)
    }

    #[test]
    fn root_covers_everything() {
        let (t, _, r) = fixture();
        assert_eq!(r.cover(SwitchId(0)), NodeMask::all(t.num_nodes()));
    }

    #[test]
    fn leaf_covers_only_local_hosts() {
        let (_, _, r) = fixture();
        assert_eq!(r.cover(SwitchId(3)), NodeMask::single(NodeId(3)));
    }

    #[test]
    fn cross_link_extends_cover() {
        let (_, _, r) = fixture();
        // S1 reaches n1 (local), n3 (down via S3) and n2 (down via the
        // cross link S1->S2, whose up end is S1).
        let c = r.cover(SwitchId(1));
        assert!(c.contains(NodeId(1)));
        assert!(c.contains(NodeId(2)));
        assert!(c.contains(NodeId(3)));
        assert!(!c.contains(NodeId(0)));
        // S2's cross-link side is an up port: S2 covers only n2 and n3.
        let c2 = r.cover(SwitchId(2));
        assert_eq!(c2, NodeMask::from_nodes([NodeId(2), NodeId(3)]));
    }

    #[test]
    fn up_ports_have_empty_strings() {
        let (t, ud, r) = fixture();
        for (sid, sw) in t.switches() {
            for pi in 0..sw.num_ports() {
                let p = PortIdx(pi as u8);
                if let PortUse::Link { link, .. } = sw.ports[pi] {
                    if ud.is_up_traversal(&t, link, sid).unwrap() {
                        assert!(r.port(sid, p).is_empty());
                    }
                }
            }
        }
    }

    #[test]
    fn host_port_string_is_singleton() {
        let (t, _, r) = fixture();
        for (n, h) in t.hosts() {
            assert_eq!(r.port(h.switch, h.port), NodeMask::single(n));
            assert!(r.port_set(h.switch, h.port).contains(n));
        }
    }

    #[test]
    fn partition_covers_exactly_once() {
        let (t, _, r) = fixture();
        let dests = NodeMask::from_nodes([NodeId(1), NodeId(2), NodeId(3)]);
        let parts = r.partition(&t, SwitchId(0), &dests);
        let mut total = NodeMask::EMPTY;
        for (_, m) in &parts {
            assert!(total.intersection(m).is_empty(), "duplicate delivery");
            total = total.union(m);
        }
        assert_eq!(total, dests);
    }

    #[test]
    fn partition_prefers_lowest_port() {
        let (t, _, r) = fixture();
        // n3 is reachable from S0 via both S1 and S2 subtrees; the
        // partition must pick exactly one (the lower-indexed port).
        let parts = r.partition(&t, SwitchId(0), NodeMask::single(NodeId(3)));
        assert_eq!(parts.len(), 1);
    }

    #[test]
    fn state_bits_counts_downward_ports() {
        let (t, ud, r) = fixture();
        // S3: only downward port is its host port -> n bits.
        assert_eq!(r.state_bits(&t, &ud, SwitchId(3), t.num_nodes()), 4);
        // S0: two down links + one host = 3 downward ports.
        assert_eq!(r.state_bits(&t, &ud, SwitchId(0), t.num_nodes()), 12);
    }

    #[test]
    fn descend_equals_cover() {
        let (t, _, r) = fixture();
        for (s, _) in t.switches() {
            assert_eq!(r.descend(s), r.cover(s));
        }
    }

    #[test]
    fn take_covered_matches_intersection() {
        let (t, _, r) = fixture();
        let dests = NodeMask::from_nodes([NodeId(0), NodeId(3)]);
        for (s, _) in t.switches() {
            assert_eq!(r.take_covered(s, &dests), r.cover(s).intersection(&dests));
        }
    }

    #[test]
    fn reachset_roundtrip_and_queries() {
        // Wide fragmented set: run encoding wins, round-trips exactly.
        let m = NodeMask::from_nodes(
            [3u16, 4, 5, 200, 201, 900, 5000, 5001, 5002, 5003].map(NodeId),
        );
        let r = ReachSet::from_mask(&m);
        assert!(matches!(r, ReachSet::Runs(_)), "fragmented wide set should run-encode");
        assert_eq!(r.to_mask(), m);
        assert_eq!(r.len(), m.len());
        assert!(r.heap_bytes() < m.heap_bytes());
        for probe in [0u16, 3, 5, 6, 199, 201, 202, 5003, 5004] {
            assert_eq!(r.contains(NodeId(probe)), m.contains(NodeId(probe)), "probe {probe}");
        }
        let sub = NodeMask::from_nodes([NodeId(4), NodeId(5000)]);
        assert!(r.covers_mask(&sub));
        assert!(!r.covers_mask(&NodeMask::single(NodeId(6))));
        assert_eq!(r.intersect_mask(&sub), sub);
        let mixed = NodeMask::from_nodes([NodeId(4), NodeId(6)]);
        assert_eq!(r.intersect_mask(&mixed), NodeMask::single(NodeId(4)));
    }

    #[test]
    fn reachset_inline_sets_stay_dense() {
        let m = NodeMask::from_nodes([NodeId(0), NodeId(77), NodeId(127)]);
        let r = ReachSet::from_mask(&m);
        assert!(matches!(r, ReachSet::Dense(_)));
        assert_eq!(r.heap_bytes(), 0);
        assert_eq!(r.to_mask(), m);
    }

    #[test]
    fn reachset_dense_wins_for_scattered_wide_sets() {
        // Every even node over a wide range: runs would need 4 bytes per
        // member vs 1 bit per node dense — dense must win.
        let m = NodeMask::from_nodes((0..2000u16).step_by(2).map(NodeId));
        let r = ReachSet::from_mask(&m);
        assert!(matches!(r, ReachSet::Dense(_)));
        assert_eq!(r.to_mask(), m);
    }

    #[test]
    fn resident_bytes_counts_shared_storage_once() {
        let (t, _, r) = fixture();
        // Paper-scale fixture: everything is inline, so resident bytes
        // are exactly the enum footprints.
        assert_eq!(
            r.resident_bytes(),
            (t.num_switches() * 8 + t.num_switches()) * std::mem::size_of::<ReachSet>()
        );
        assert!(r.dense_equivalent_bytes() > 0);
    }
}
