//! Small deterministic PRNG — splitmix64 seeding + xoshiro256** output.
//!
//! The repository used `rand::rngs::SmallRng` for everything stochastic
//! (topology generation, workload draws). That pulled a registry
//! dependency into every crate and made offline builds impossible, while
//! none of `rand`'s generality was actually used. This module replaces it
//! with the same two classic generators `SmallRng` is built from:
//!
//! * [`splitmix64`] — a one-at-a-time mixing function, used to expand a
//!   `u64` seed into generator state and to hash seed tuples into
//!   independent per-task stream seeds (see [`hash2`]/[`hash3`]);
//! * [`SmallRng`] — xoshiro256** 1.0 (Blackman & Vigna), a 256-bit-state
//!   all-purpose generator with sub-nanosecond output and no statistical
//!   failures in BigCrush.
//!
//! The API surface mirrors the subset of `rand` the repo used —
//! `SmallRng::seed_from_u64` and `gen_range` over integer and float
//! ranges — so call sites changed only their `use` lines. Streams are
//! *not* bit-compatible with `rand`'s `SmallRng` (which is xoshiro256++);
//! all committed experiment goldens were regenerated with this module.

/// One step of the splitmix64 sequence: advances `*state` and returns the
/// next output. Passes PractRand at all sizes; used for seeding and
/// hashing, not as the main generator.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Hash two words into one well-mixed word (for deriving independent
/// per-task RNG seeds from a base seed plus an index).
#[inline]
pub fn hash2(a: u64, b: u64) -> u64 {
    let mut s = a;
    let x = splitmix64(&mut s);
    let mut s = x ^ b;
    splitmix64(&mut s)
}

/// Hash three words into one well-mixed word. Replaces the collision-prone
/// `seed ^ (pi << 32) ^ ti` xor-mixing the sweep harness used to use:
/// distinct `(seed, a, b)` triples map to unrelated streams even when the
/// inputs are small consecutive integers.
#[inline]
pub fn hash3(a: u64, b: u64, c: u64) -> u64 {
    let mut s = hash2(a, b) ^ c;
    splitmix64(&mut s)
}

/// FNV-1a over a byte string — the stable hash used for config
/// fingerprints in run manifests (not related to the RNG, but kept with
/// the other deterministic mixing primitives).
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// xoshiro256** 1.0 — the repo's deterministic small RNG.
///
/// `Clone` copies the stream position; two clones produce identical
/// sequences from the copy point on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Seed the generator from a single `u64` by running splitmix64 four
    /// times — the construction the xoshiro authors recommend (and the
    /// one `rand` uses for its own `seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a range, mirroring `rand::Rng::gen_range`.
    ///
    /// Supported range shapes are the ones the repo draws from:
    /// `usize`/`u64` half-open and inclusive ranges and `f64` half-open
    /// ranges. Panics on empty ranges, like `rand` does.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// A range shape [`SmallRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

/// Uniform integer in `[0, n)` by 128-bit widening multiply (Lemire's
/// multiply-shift; the bias is < 2⁻⁶⁴·n, irrelevant at the range sizes
/// used here).
#[inline]
fn below(rng: &mut SmallRng, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

impl SampleRange for core::ops::Range<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut SmallRng) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + below(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange for core::ops::RangeInclusive<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut SmallRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + below(rng, (hi - lo) as u64 + 1) as usize
    }
}

impl SampleRange for core::ops::Range<u64> {
    type Output = u64;
    #[inline]
    fn sample(self, rng: &mut SmallRng) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + below(rng, self.end - self.start)
    }
}

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_xoshiro256starstar() {
        // First outputs for state seeded with splitmix64(0),
        // cross-checked against the published reference implementation.
        let mut sm = 0u64;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // splitmix64 reference outputs for seed 0.
        assert_eq!(s[0], 0xE220A8397B1DCDAF);
        assert_eq!(s[1], 0x6E789E6AA1B965F4);
        assert_eq!(s[2], 0x06C45D188009454F);
        assert_eq!(s[3], 0xF88BB8A8724C81EC);
        let mut rng = SmallRng { s };
        let first = rng.next_u64();
        // xoshiro256** first output = rotl(s[1] * 5, 7) * 9.
        assert_eq!(first, 0x6E789E6AA1B965F4u64.wrapping_mul(5).rotate_left(7).wrapping_mul(9));
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&u));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SmallRng::seed_from_u64(0).gen_range(5usize..5);
    }

    #[test]
    fn hash_mixing_separates_neighbor_tuples() {
        // The old `seed ^ (pi << 32) ^ ti` mixing collided for
        // (pi, ti) = (0, 1) vs (1, 1<<32) style pairs and produced
        // correlated streams for consecutive indices. hash3 must not.
        let mut outs = std::collections::HashSet::new();
        for pi in 0..64u64 {
            for ti in 0..64u64 {
                assert!(outs.insert(hash3(0xBEEF, pi, ti)));
            }
        }
        // Avalanche sanity: one-bit input change flips ~half the output.
        let d = (hash3(0, 0, 0) ^ hash3(0, 0, 1)).count_ones();
        assert!((8..=56).contains(&d), "poor avalanche: {d} bits");
    }

    #[test]
    fn fnv1a_known_values() {
        assert_eq!(fnv1a(b""), 0xCBF29CE484222325);
        assert_eq!(fnv1a(b"a"), 0xAF63DC4C8601EC8C);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn next_f64_is_half_open_unit() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            lo = lo.min(f);
            hi = hi.max(f);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }
}
