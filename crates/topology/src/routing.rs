//! Deadlock-free adaptive up*/down* routing tables (§2.2).
//!
//! A legal route traverses zero or more links in the *up* direction
//! followed by zero or more links in the *down* direction; a packet may
//! never go up after having gone down. Routing is adaptive: at each switch
//! every port that lies on a *minimal* legal route to the destination is a
//! valid choice, and the simulator picks whichever candidate is free.
//!
//! The tables are computed once per topology by a backward BFS per
//! destination switch over the two-phase state graph
//! `(switch, phase ∈ {Up, Down})`.

use crate::error::TopologyError;
use crate::fault::FaultStatus;
use crate::graph::Topology;
use crate::ids::{LinkId, PortIdx, SwitchId};
use crate::updown::UpDown;

/// Routing phase of an in-flight worm.
///
/// `Up` = has not yet traversed a down link (may go up or turn down);
/// `Down` = has gone down at least once (down links only from now on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Still in the up* prefix of the route.
    Up,
    /// Committed to the down* suffix.
    Down,
}

impl Phase {
    #[inline]
    fn idx(self) -> usize {
        match self {
            Phase::Up => 0,
            Phase::Down => 1,
        }
    }
}

/// One admissible next hop on a minimal legal route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortCandidate {
    /// Output port on the current switch.
    pub port: PortIdx,
    /// The link behind that port.
    pub link: LinkId,
    /// The switch at the other end.
    pub next: SwitchId,
    /// The phase the worm is in after the traversal.
    pub next_phase: Phase,
}

/// Distance not reachable marker.
pub const UNREACHABLE: u16 = u16::MAX;

/// Compressed-sparse-row candidate storage: one contiguous candidate
/// array plus `n² + 1` offsets. A `Vec<Vec<PortCandidate>>` of n² cells
/// costs 24 bytes of header plus an allocation *per cell* (~1M cells at
/// 1000 switches, per plane); CSR keeps two flat allocations per plane.
#[derive(Debug, Clone, Default)]
struct CandCsr {
    offsets: Vec<u32>,
    cands: Vec<PortCandidate>,
}

impl CandCsr {
    #[inline]
    fn row(&self, cell: usize) -> &[PortCandidate] {
        &self.cands[self.offsets[cell] as usize..self.offsets[cell + 1] as usize]
    }
}

/// All-pairs minimal up*/down* distances and next-hop candidate sets.
#[derive(Debug, Clone)]
pub struct RoutingTables {
    num_switches: usize,
    /// `dist[phase][s * n + t]` = minimal legal hops from `s` (in `phase`)
    /// to switch `t`; `UNREACHABLE` if none.
    dist: [Vec<u16>; 2],
    /// Minimal next-hop candidates per `(phase, s * n + t)` cell.
    hops: [CandCsr; 2],
    /// `dist_up[s * n + t]` = minimal hops from `s` to `t` using **up
    /// links only** (so the worm arrives with its up* prefix intact);
    /// `UNREACHABLE` if no pure-up route exists.
    dist_up: Vec<u16>,
    /// Minimal next hops for the up-only plane.
    hops_up: CandCsr,
}

/// Enumerate every minimal next-hop candidate of the two main planes, in
/// deterministic `(s, move, t)` order. Called twice per compute: once to
/// count per cell, once to place — both passes must see identical output.
fn for_each_main_candidate(
    n: usize,
    moves: &[Vec<(PortIdx, LinkId, SwitchId, bool)>],
    dist: &[Vec<u16>; 2],
    sink: &mut impl FnMut(usize, usize, PortCandidate),
) {
    for (s, ms) in moves.iter().enumerate() {
        for &(port, link, next, is_up) in ms {
            for t in 0..n {
                // From (s, Up):
                let next_phase = if is_up { Phase::Up } else { Phase::Down };
                let d_here = dist[0][s * n + t];
                let d_next = dist[next_phase.idx()][next.idx() * n + t];
                if d_here != UNREACHABLE && d_next != UNREACHABLE && d_next + 1 == d_here {
                    sink(0, s * n + t, PortCandidate { port, link, next, next_phase });
                }
                // From (s, Down): only down traversals are legal.
                if !is_up {
                    let d_here = dist[1][s * n + t];
                    let d_next = dist[1][next.idx() * n + t];
                    if d_here != UNREACHABLE && d_next != UNREACHABLE && d_next + 1 == d_here {
                        sink(1, s * n + t, PortCandidate { port, link, next, next_phase: Phase::Down });
                    }
                }
            }
        }
    }
}

/// Same two-pass enumeration for the up-only plane.
fn for_each_up_candidate(
    n: usize,
    moves: &[Vec<(PortIdx, LinkId, SwitchId, bool)>],
    dist_up: &[u16],
    sink: &mut impl FnMut(usize, PortCandidate),
) {
    for (s, ms) in moves.iter().enumerate() {
        for &(port, link, next, is_up) in ms {
            if !is_up {
                continue;
            }
            for t in 0..n {
                let d_here = dist_up[s * n + t];
                let d_next = dist_up[next.idx() * n + t];
                if d_here != UNREACHABLE && d_next != UNREACHABLE && d_next + 1 == d_here {
                    sink(s * n + t, PortCandidate { port, link, next, next_phase: Phase::Up });
                }
            }
        }
    }
}

/// Exclusive prefix sums over per-cell counts, with the candidate slab
/// preallocated (placeholder-filled; the placement pass overwrites every
/// slot exactly once).
fn csr_from_counts(counts: &[u32]) -> CandCsr {
    let mut offsets = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0u32;
    offsets.push(0);
    for &c in counts {
        acc += c;
        offsets.push(acc);
    }
    let filler =
        PortCandidate { port: PortIdx(0), link: LinkId(0), next: SwitchId(0), next_phase: Phase::Up };
    CandCsr { offsets, cands: vec![filler; acc as usize] }
}

impl RoutingTables {
    /// Compute tables for a topology under a given up/down orientation.
    pub fn compute(topo: &Topology, updown: &UpDown) -> Result<Self, TopologyError> {
        Self::compute_inner(topo, updown, None)
    }

    /// Compute tables over the **surviving** graph of a degrading
    /// network: dead links and links into dead switches contribute no
    /// moves, so dead components are unreachable and never appear as
    /// next-hop candidates. Rows for dead switches are all-`UNREACHABLE`.
    pub fn compute_masked(
        topo: &Topology,
        updown: &UpDown,
        status: &FaultStatus,
    ) -> Result<Self, TopologyError> {
        Self::compute_inner(topo, updown, Some(status))
    }

    fn compute_inner(
        topo: &Topology,
        updown: &UpDown,
        status: Option<&FaultStatus>,
    ) -> Result<Self, TopologyError> {
        let n = topo.num_switches();
        let mut dist = [vec![UNREACHABLE; n * n], vec![UNREACHABLE; n * n]];

        // Forward adjacency with phases, per switch. Masked computes drop
        // every move across a dead link or into/out of a dead switch —
        // this is the single point where faults enter the tables.
        // moves[s] = Vec of (port, link, next, traversal_is_up)
        let mut moves: Vec<Vec<(PortIdx, LinkId, SwitchId, bool)>> = Vec::with_capacity(n);
        for si in 0..n {
            let s = SwitchId(si as u16);
            if let Some(st) = status {
                if !st.switch_up(s) {
                    moves.push(Vec::new());
                    continue;
                }
            }
            let mut ms = Vec::new();
            for (l, peer, port) in topo.neighbors(s) {
                if let Some(st) = status {
                    if !st.link_up(topo, l) {
                        continue;
                    }
                }
                ms.push((port, l, peer, updown.is_up_traversal(topo, l, s)?));
            }
            moves.push(ms);
        }

        // Reverse adjacency over states: rev[(s,phase)] lists (prev, prev_phase).
        // Transition rules (forward):
        //   (s, Up)  --up-->   (s', Up)
        //   (s, Up)  --down--> (s', Down)
        //   (s, Down)--down--> (s', Down)
        // Backward BFS per destination t from states {(t, Up), (t, Down)}.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); 2 * n];
        for (si, ms) in moves.iter().enumerate() {
            for &(_, _, next, is_up) in ms {
                let ni = next.idx();
                if is_up {
                    // (si, Up) -> (ni, Up)
                    rev[ni].push(si); // Up plane: rev[ni in Up] gets si (Up)
                } else {
                    // (si, Up) -> (ni, Down) and (si, Down) -> (ni, Down)
                    rev[n + ni].push(si); // encode below
                }
            }
        }
        // NOTE: rev[t] (Up plane) holds predecessors in Up phase via up links;
        // rev[n+t] (Down plane) holds predecessors (in either phase) via down
        // links — a down traversal into t can originate from (prev, Up) or
        // (prev, Down).

        let mut queue = std::collections::VecDeque::new();
        for t in 0..n {
            // Being AT t in either phase is distance 0.
            queue.clear();
            dist[0][t * n + t] = 0;
            dist[1][t * n + t] = 0;
            queue.push_back((t, Phase::Up));
            queue.push_back((t, Phase::Down));
            while let Some((s, ph)) = queue.pop_front() {
                let d = dist[ph.idx()][s * n + t];
                match ph {
                    Phase::Up => {
                        // Predecessors that reach (s, Up): (prev, Up) via an
                        // up traversal prev->s.
                        for &p in &rev[s] {
                            let slot = &mut dist[0][p * n + t];
                            if *slot == UNREACHABLE {
                                *slot = d + 1;
                                queue.push_back((p, Phase::Up));
                            }
                        }
                    }
                    Phase::Down => {
                        // Predecessors that reach (s, Down): any prev with a
                        // down traversal prev->s, in either phase.
                        for &p in &rev[n + s] {
                            for ph_prev in [Phase::Up, Phase::Down] {
                                let slot = &mut dist[ph_prev.idx()][p * n + t];
                                if *slot == UNREACHABLE {
                                    *slot = d + 1;
                                    queue.push_back((p, ph_prev));
                                }
                            }
                        }
                    }
                }
            }
        }

        // Next-hop candidate sets, built in CSR form with two identical
        // passes (count, then place) so the per-cell candidate order is
        // exactly the order per-cell Vec pushes used to produce.
        let mut counts = [vec![0u32; n * n], vec![0u32; n * n]];
        for_each_main_candidate(n, &moves, &dist, &mut |ph, cell, _| counts[ph][cell] += 1);
        let mut hops = [csr_from_counts(&counts[0]), csr_from_counts(&counts[1])];
        let mut cursor = [hops[0].offsets.clone(), hops[1].offsets.clone()];
        for_each_main_candidate(n, &moves, &dist, &mut |ph, cell, cand| {
            hops[ph].cands[cursor[ph][cell] as usize] = cand;
            cursor[ph][cell] += 1;
        });

        // Up-only plane: backward BFS per destination over up edges.
        let mut dist_up = vec![UNREACHABLE; n * n];
        for t in 0..n {
            dist_up[t * n + t] = 0;
            queue.clear();
            queue.push_back((t, Phase::Up));
            while let Some((s, _)) = queue.pop_front() {
                let d = dist_up[s * n + t];
                // Predecessors with an up traversal prev -> s.
                for &p in &rev[s] {
                    let slot = &mut dist_up[p * n + t];
                    if *slot == UNREACHABLE {
                        *slot = d + 1;
                        queue.push_back((p, Phase::Up));
                    }
                }
            }
        }
        let mut counts_up = vec![0u32; n * n];
        for_each_up_candidate(n, &moves, &dist_up, &mut |cell, _| counts_up[cell] += 1);
        let mut hops_up = csr_from_counts(&counts_up);
        let mut cursor_up = hops_up.offsets.clone();
        for_each_up_candidate(n, &moves, &dist_up, &mut |cell, cand| {
            hops_up.cands[cursor_up[cell] as usize] = cand;
            cursor_up[cell] += 1;
        });

        Ok(RoutingTables { num_switches: n, dist, hops, dist_up, hops_up })
    }

    /// Minimal hop count from `s` to `t` using only up links, or
    /// [`UNREACHABLE`]. A worm arriving via such a route has not spent its
    /// down* suffix — needed by path-based worms whose planned route
    /// visits `t` during the up* prefix.
    #[inline]
    pub fn up_only_distance(&self, s: SwitchId, t: SwitchId) -> u16 {
        self.dist_up[s.idx() * self.num_switches + t.idx()]
    }

    /// Minimal next hops of the up-only plane (all arrive in `Phase::Up`).
    #[inline]
    pub fn up_only_next_hops(&self, s: SwitchId, t: SwitchId) -> &[PortCandidate] {
        self.hops_up.row(s.idx() * self.num_switches + t.idx())
    }

    /// Minimal legal hop count from switch `s` (in `phase`) to switch `t`,
    /// or [`UNREACHABLE`].
    #[inline]
    pub fn distance(&self, s: SwitchId, phase: Phase, t: SwitchId) -> u16 {
        self.dist[phase.idx()][s.idx() * self.num_switches + t.idx()]
    }

    /// All minimal legal next hops from `s` (in `phase`) toward `t`.
    /// Empty iff `s == t` or `t` is unreachable in this phase.
    #[inline]
    pub fn next_hops(&self, s: SwitchId, phase: Phase, t: SwitchId) -> &[PortCandidate] {
        self.hops[phase.idx()].row(s.idx() * self.num_switches + t.idx())
    }

    /// Number of switches the tables were built for.
    #[inline]
    pub fn num_switches(&self) -> usize {
        self.num_switches
    }

    /// True if every switch can reach every other switch starting in the
    /// Up phase — guaranteed for any connected up*/down* network (via the
    /// root), asserted in tests.
    pub fn fully_connected(&self) -> bool {
        let n = self.num_switches;
        (0..n).all(|s| (0..n).all(|t| self.dist[0][s * n + t] != UNREACHABLE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TopologyBuilder;
    use crate::updown::UpDown;

    fn diamond() -> (Topology, UpDown, RoutingTables) {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch(8);
        let s1 = b.add_switch(8);
        let s2 = b.add_switch(8);
        let s3 = b.add_switch(8);
        b.add_link(s0, s1).unwrap();
        b.add_link(s0, s2).unwrap();
        b.add_link(s1, s3).unwrap();
        b.add_link(s2, s3).unwrap();
        for s in [s0, s1, s2, s3] {
            b.add_host(s).unwrap();
        }
        let t = b.build().unwrap();
        let ud = UpDown::compute(&t, s0).unwrap();
        let rt = RoutingTables::compute(&t, &ud).unwrap();
        (t, ud, rt)
    }

    #[test]
    fn zero_distance_to_self() {
        let (_, _, rt) = diamond();
        for s in 0..4u16 {
            assert_eq!(rt.distance(SwitchId(s), Phase::Up, SwitchId(s)), 0);
            assert_eq!(rt.distance(SwitchId(s), Phase::Down, SwitchId(s)), 0);
            assert!(rt.next_hops(SwitchId(s), Phase::Up, SwitchId(s)).is_empty());
        }
    }

    #[test]
    fn adjacent_distance_is_one() {
        let (_, _, rt) = diamond();
        assert_eq!(rt.distance(SwitchId(0), Phase::Up, SwitchId(1)), 1);
        assert_eq!(rt.distance(SwitchId(1), Phase::Up, SwitchId(0)), 1);
    }

    #[test]
    fn up_phase_reaches_everything() {
        let (_, _, rt) = diamond();
        assert!(rt.fully_connected());
    }

    #[test]
    fn down_phase_is_restricted() {
        let (_, _, rt) = diamond();
        // From S3 (a leaf) in Down phase nothing but itself is reachable:
        // both its links point up.
        assert_eq!(rt.distance(SwitchId(3), Phase::Down, SwitchId(0)), UNREACHABLE);
        // From the root in Down phase everything is reachable (all links
        // at the root point down).
        for t in 0..4u16 {
            assert_ne!(rt.distance(SwitchId(0), Phase::Down, SwitchId(t)), UNREACHABLE);
        }
    }

    #[test]
    fn sibling_route_goes_through_common_ancestor() {
        let (_, _, rt) = diamond();
        // S1 -> S2: legal minimal routes are via S0 (up then down) or via
        // S3? S1->S3 is down, S3->S2 would be up — illegal. So distance 2
        // via S0 only.
        assert_eq!(rt.distance(SwitchId(1), Phase::Up, SwitchId(2)), 2);
        let hops = rt.next_hops(SwitchId(1), Phase::Up, SwitchId(2));
        assert_eq!(hops.len(), 1);
        assert_eq!(hops[0].next, SwitchId(0));
        assert_eq!(hops[0].next_phase, Phase::Up);
    }

    #[test]
    fn adaptive_choice_where_two_minimal_routes_exist() {
        let (_, _, rt) = diamond();
        // S0 -> S3: down via S1 or down via S2, both length 2.
        let hops = rt.next_hops(SwitchId(0), Phase::Up, SwitchId(3));
        assert_eq!(hops.len(), 2);
        assert!(hops.iter().all(|h| h.next_phase == Phase::Down));
    }

    #[test]
    fn next_hops_reduce_distance() {
        let (_, _, rt) = diamond();
        for s in 0..4u16 {
            for t in 0..4u16 {
                for ph in [Phase::Up, Phase::Down] {
                    let d = rt.distance(SwitchId(s), ph, SwitchId(t));
                    if d == UNREACHABLE || d == 0 {
                        continue;
                    }
                    for h in rt.next_hops(SwitchId(s), ph, SwitchId(t)) {
                        assert_eq!(rt.distance(h.next, h.next_phase, SwitchId(t)), d - 1);
                    }
                    assert!(!rt.next_hops(SwitchId(s), ph, SwitchId(t)).is_empty());
                }
            }
        }
    }

    #[test]
    fn up_only_plane_is_restricted_to_climbs() {
        let (_, _, rt) = diamond();
        // S3 -> S1 and S3 -> S0 are pure climbs.
        assert_eq!(rt.up_only_distance(SwitchId(3), SwitchId(1)), 1);
        assert_eq!(rt.up_only_distance(SwitchId(3), SwitchId(0)), 2);
        // S0 -> S3 needs down links: unreachable in the up-only plane.
        assert_eq!(rt.up_only_distance(SwitchId(0), SwitchId(3)), UNREACHABLE);
        // S1 -> S2 (siblings) likewise.
        assert_eq!(rt.up_only_distance(SwitchId(1), SwitchId(2)), UNREACHABLE);
        // Hops exist and keep phase Up.
        let hops = rt.up_only_next_hops(SwitchId(3), SwitchId(0));
        assert!(!hops.is_empty());
        assert!(hops.iter().all(|h| h.next_phase == Phase::Up));
    }

    #[test]
    fn up_only_distance_never_beats_general_distance() {
        let (_, _, rt) = diamond();
        for s in 0..4u16 {
            for t in 0..4u16 {
                let up = rt.up_only_distance(SwitchId(s), SwitchId(t));
                let gen = rt.distance(SwitchId(s), Phase::Up, SwitchId(t));
                if up != UNREACHABLE {
                    assert!(up >= gen);
                }
            }
        }
    }

    #[test]
    fn no_up_after_down() {
        // In Down phase, every candidate keeps phase Down.
        let (_, _, rt) = diamond();
        for s in 0..4u16 {
            for t in 0..4u16 {
                for h in rt.next_hops(SwitchId(s), Phase::Down, SwitchId(t)) {
                    assert_eq!(h.next_phase, Phase::Down);
                }
            }
        }
    }
}
