//! Autonet-style BFS spanning tree and up/down link orientation (§2.2).
//!
//! A breadth-first spanning tree is computed on the switch graph from a
//! deterministic root. The *up* end of each link is then defined as
//!
//! 1. the end whose switch is closer to the root in the spanning tree, or
//! 2. the end whose switch has the lower id, if both ends are at switches
//!    at the same level.
//!
//! The resulting directed "up" graph is loop-free, which is what makes the
//! up*/down* routing rule (zero or more up links, then zero or more down
//! links) deadlock-free.

use crate::error::TopologyError;
use crate::fault::FaultStatus;
use crate::graph::{PortUse, Topology};
use crate::ids::{LinkId, PortIdx, SwitchId};
use std::collections::VecDeque;

/// BFS spanning tree plus per-link up-end assignment.
#[derive(Debug, Clone)]
pub struct UpDown {
    root: SwitchId,
    /// BFS level of each switch (root = 0).
    level: Vec<u32>,
    /// BFS-tree parent of each switch (`None` for the root).
    parent: Vec<Option<SwitchId>>,
    /// The link used to reach each switch from its parent (`None` for root).
    parent_link: Vec<Option<LinkId>>,
    /// For each link, which side (0 = `a`, 1 = `b`) is the *up* end.
    up_side: Vec<u8>,
}

impl UpDown {
    /// Compute the spanning tree and orientation rooted at `root`.
    ///
    /// The distributed Autonet algorithm elects a unique root; we model
    /// that with an explicit, deterministic choice (lowest switch id by
    /// default, see [`crate::Network::analyze`]).
    pub fn compute(topo: &Topology, root: SwitchId) -> Result<Self, TopologyError> {
        Self::compute_inner(topo, root, None)
    }

    /// Recompute the spanning tree over the **surviving** graph of a
    /// degrading network: dead links are never traversed and dead
    /// switches never enqueued. Surviving switches that the BFS cannot
    /// reach mean the faults split the network — reported as
    /// [`TopologyError::PartitionedNetwork`] with the stranded switches
    /// and hosts. Dead switches keep `level == u32::MAX`; every query
    /// about them is meaningless and downstream consumers must mask them
    /// out (the masked routing/reachability computes do).
    pub fn compute_masked(
        topo: &Topology,
        root: SwitchId,
        status: &FaultStatus,
    ) -> Result<Self, TopologyError> {
        Self::compute_inner(topo, root, Some(status))
    }

    fn compute_inner(
        topo: &Topology,
        root: SwitchId,
        status: Option<&FaultStatus>,
    ) -> Result<Self, TopologyError> {
        let n = topo.num_switches();
        if root.idx() >= n {
            return Err(TopologyError::BadRoot(root));
        }
        if let Some(st) = status {
            if !st.switch_up(root) {
                return Err(TopologyError::BadRoot(root));
            }
        }
        let mut level = vec![u32::MAX; n];
        let mut parent = vec![None; n];
        let mut parent_link = vec![None; n];
        let mut q = VecDeque::new();
        level[root.idx()] = 0;
        q.push_back(root);
        while let Some(s) = q.pop_front() {
            // Deterministic neighbor order: ports in increasing index.
            for (link, peer, _port) in topo.neighbors(s) {
                if let Some(st) = status {
                    if !st.link_up(topo, link) {
                        continue;
                    }
                }
                if level[peer.idx()] == u32::MAX {
                    level[peer.idx()] = level[s.idx()] + 1;
                    parent[peer.idx()] = Some(s);
                    parent_link[peer.idx()] = Some(link);
                    q.push_back(peer);
                }
            }
        }
        match status {
            None => {
                if let Some(u) = level.iter().position(|&l| l == u32::MAX) {
                    return Err(TopologyError::Disconnected { unreachable: SwitchId(u as u16) });
                }
            }
            Some(st) => {
                // Only *surviving* switches must be reachable; stranded
                // ones are a partition, reported with their hosts.
                let unreachable_switches: Vec<SwitchId> = st
                    .alive_switches()
                    .filter(|s| level[s.idx()] == u32::MAX)
                    .collect();
                if !unreachable_switches.is_empty() {
                    let unreachable_hosts = topo
                        .hosts()
                        .filter(|(_, h)| unreachable_switches.contains(&h.switch))
                        .map(|(n, _)| n)
                        .collect();
                    return Err(TopologyError::PartitionedNetwork {
                        unreachable_switches,
                        unreachable_hosts,
                    });
                }
            }
        }
        let mut up_side = Vec::with_capacity(topo.num_links());
        for (_, l) in topo.links() {
            let (sa, sb) = (l.a.0, l.b.0);
            let (la, lb) = (level[sa.idx()], level[sb.idx()]);
            // Up end: closer to root, ties broken by lower switch id.
            // Dead switches sit at u32::MAX, so a link with one surviving
            // end is oriented up toward the survivor — harmless either
            // way, since dead links are masked out of every consumer.
            let side = if la < lb || (la == lb && sa < sb) { 0 } else { 1 };
            up_side.push(side);
        }
        Ok(UpDown { root, level, parent, parent_link, up_side })
    }

    /// The spanning-tree root.
    #[inline]
    pub fn root(&self) -> SwitchId {
        self.root
    }

    /// BFS level of a switch (root = 0).
    #[inline]
    pub fn level(&self, s: SwitchId) -> u32 {
        self.level[s.idx()]
    }

    /// BFS-tree parent of a switch.
    #[inline]
    pub fn parent(&self, s: SwitchId) -> Option<SwitchId> {
        self.parent[s.idx()]
    }

    /// The link connecting a switch to its BFS-tree parent.
    #[inline]
    pub fn parent_link(&self, s: SwitchId) -> Option<LinkId> {
        self.parent_link[s.idx()]
    }

    /// Which side (0/1) of a link is the *up* end.
    #[inline]
    pub fn up_side(&self, l: LinkId) -> u8 {
        self.up_side[l.idx()]
    }

    /// True if traversing `link` out of switch `from` moves in the *up*
    /// direction (i.e. arrives at the link's up end).
    ///
    /// Errors with [`TopologyError::Inconsistent`] if `from` is not an
    /// endpoint of `link` — a caller mixing up orientations and
    /// topologies, reported instead of panicking.
    pub fn is_up_traversal(
        &self,
        topo: &Topology,
        link: LinkId,
        from: SwitchId,
    ) -> Result<bool, TopologyError> {
        let l = topo.link(link);
        let from_side = l
            .side_of(from)
            .ok_or(TopologyError::Inconsistent("switch not on link"))?;
        let to_side = 1 - from_side;
        Ok(to_side == self.up_side[link.idx()])
    }

    /// Links leaving `s` in the up direction, with `(link, peer, local port)`.
    ///
    /// Links on which the orientation query fails (mismatched topology)
    /// are silently skipped — they belong to neither direction.
    pub fn up_links<'a>(
        &'a self,
        topo: &'a Topology,
        s: SwitchId,
    ) -> impl Iterator<Item = (LinkId, SwitchId, PortIdx)> + 'a {
        topo.neighbors(s)
            .filter(move |(l, _, _)| matches!(self.is_up_traversal(topo, *l, s), Ok(true)))
    }

    /// Links leaving `s` in the down direction, with `(link, peer, local port)`.
    ///
    /// Links on which the orientation query fails (mismatched topology)
    /// are silently skipped — they belong to neither direction.
    pub fn down_links<'a>(
        &'a self,
        topo: &'a Topology,
        s: SwitchId,
    ) -> impl Iterator<Item = (LinkId, SwitchId, PortIdx)> + 'a {
        topo.neighbors(s)
            .filter(move |(l, _, _)| matches!(self.is_up_traversal(topo, *l, s), Ok(false)))
    }

    /// Ports of `s` that lead in the down direction to another switch or to
    /// a host — exactly the ports that carry a reachability string in the
    /// tree-based scheme.
    pub fn downward_ports<'a>(
        &'a self,
        topo: &'a Topology,
        s: SwitchId,
    ) -> impl Iterator<Item = PortIdx> + 'a {
        topo.switch(s).ports.iter().enumerate().filter_map(move |(pi, pu)| match pu {
            PortUse::Host(_) => Some(PortIdx(pi as u8)),
            PortUse::Link { link, .. } => {
                match self.is_up_traversal(topo, *link, s) {
                    Ok(false) => Some(PortIdx(pi as u8)),
                    _ => None,
                }
            }
            PortUse::Open => None,
        })
    }

    /// Verify that the directed up graph is acyclic (it is by
    /// construction; this is exposed for tests and failure injection).
    pub fn verify_acyclic(&self, topo: &Topology) -> Result<(), TopologyError> {
        // An up traversal either strictly decreases the BFS level or keeps
        // it equal while strictly decreasing the switch id; both orders are
        // well-founded, so any up cycle is impossible. Check the invariant
        // explicitly on every link.
        for (li, l) in topo.links() {
            let up = l.end(self.up_side[li.idx()]).0;
            let down = l.end(1 - self.up_side[li.idx()]).0;
            let (lu, ld) = (self.level(up), self.level(down));
            let ok = lu < ld || (lu == ld && up < down);
            if !ok {
                return Err(TopologyError::Inconsistent("up end not closer to root / lower id"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TopologyBuilder;

    /// Diamond: S0 root, S1 and S2 at level 1, S3 at level 2 with links to
    /// both S1 and S2, plus a cross link S1-S2 at equal level.
    fn diamond() -> (Topology, UpDown) {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch(8);
        let s1 = b.add_switch(8);
        let s2 = b.add_switch(8);
        let s3 = b.add_switch(8);
        b.add_link(s0, s1).unwrap();
        b.add_link(s0, s2).unwrap();
        b.add_link(s1, s3).unwrap();
        b.add_link(s2, s3).unwrap();
        b.add_link(s1, s2).unwrap(); // cross link, equal level
        for s in [s0, s1, s2, s3] {
            b.add_host(s).unwrap();
        }
        let t = b.build().unwrap();
        let ud = UpDown::compute(&t, s0).unwrap();
        (t, ud)
    }

    #[test]
    fn levels_follow_bfs() {
        let (_, ud) = diamond();
        assert_eq!(ud.level(SwitchId(0)), 0);
        assert_eq!(ud.level(SwitchId(1)), 1);
        assert_eq!(ud.level(SwitchId(2)), 1);
        assert_eq!(ud.level(SwitchId(3)), 2);
        assert_eq!(ud.root(), SwitchId(0));
        assert_eq!(ud.parent(SwitchId(0)), None);
        assert_eq!(ud.parent(SwitchId(3)), Some(SwitchId(1)));
    }

    #[test]
    fn up_is_toward_root_and_ties_by_id() {
        let (t, ud) = diamond();
        // S1 -> S0 is up, S0 -> S1 is down.
        let l01 = LinkId(0);
        assert!(ud.is_up_traversal(&t, l01, SwitchId(1)).unwrap());
        assert!(!ud.is_up_traversal(&t, l01, SwitchId(0)).unwrap());
        // Cross link S1-S2 at equal level: up end is the lower id, S1.
        let l12 = LinkId(4);
        assert!(ud.is_up_traversal(&t, l12, SwitchId(2)).unwrap());
        assert!(!ud.is_up_traversal(&t, l12, SwitchId(1)).unwrap());
    }

    #[test]
    fn up_down_link_iterators_partition_neighbors() {
        let (t, ud) = diamond();
        for (sid, _) in t.switches() {
            let ups = ud.up_links(&t, sid).count();
            let downs = ud.down_links(&t, sid).count();
            assert_eq!(ups + downs, t.neighbors(sid).count());
        }
        // Root has no up links.
        assert_eq!(ud.up_links(&t, SwitchId(0)).count(), 0);
    }

    #[test]
    fn downward_ports_include_hosts() {
        let (t, ud) = diamond();
        // S3: two up links (to S1, S2), one host -> exactly one downward port.
        let d: Vec<_> = ud.downward_ports(&t, SwitchId(3)).collect();
        assert_eq!(d.len(), 1);
        assert!(matches!(
            t.switch(SwitchId(3)).ports[d[0].idx()],
            PortUse::Host(_)
        ));
    }

    #[test]
    fn acyclicity_holds() {
        let (t, ud) = diamond();
        ud.verify_acyclic(&t).unwrap();
    }

    #[test]
    fn bad_root_rejected() {
        let (t, _) = diamond();
        assert!(matches!(
            UpDown::compute(&t, SwitchId(99)),
            Err(TopologyError::BadRoot(_))
        ));
    }

    #[test]
    fn parallel_links_get_same_orientation() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch(8);
        let s1 = b.add_switch(8);
        b.add_link(s0, s1).unwrap();
        b.add_link(s0, s1).unwrap();
        b.add_host(s0).unwrap();
        b.add_host(s1).unwrap();
        let t = b.build().unwrap();
        let ud = UpDown::compute(&t, s0).unwrap();
        assert!(ud.is_up_traversal(&t, LinkId(0), s1).unwrap());
        assert!(ud.is_up_traversal(&t, LinkId(1), s1).unwrap());
    }
}
