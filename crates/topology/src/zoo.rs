//! Fixed example topologies for tests, examples, and documentation.

use crate::builder::TopologyBuilder;
use crate::error::TopologyError;
use crate::graph::Topology;
use crate::ids::SwitchId;

/// An 8-switch irregular network in the spirit of the paper's Fig. 1:
/// eight 8-port switches, irregular connectivity with one parallel link
/// pair, 32 hosts (4 per switch).
///
/// The exact figure's wiring is not recoverable from the OCR'd text, so
/// this is a representative irregular instance: a two-level core with
/// cross links and one double link.
pub fn paper_example() -> Result<Topology, TopologyError> {
    let mut b = TopologyBuilder::new();
    let s: Vec<SwitchId> = (0..8).map(|_| b.add_switch(8)).collect();
    // Irregular wiring (11 links incl. one parallel pair).
    let pairs = [
        (0, 1),
        (0, 2),
        (1, 3),
        (2, 3),
        (2, 4),
        (3, 5),
        (4, 6),
        (5, 7),
        (6, 7),
        (1, 6),
        (1, 6), // parallel link
    ];
    for (a, c) in pairs {
        b.add_link(s[a], s[c])?;
    }
    for &sw in &s {
        for _ in 0..4 {
            b.add_host(sw)?;
        }
    }
    b.build()
}

/// A chain of `n` switches, one host per switch. Minimal connectivity:
/// useful for pinning down latency arithmetic in tests.
pub fn chain(n: usize) -> Result<Topology, TopologyError> {
    if n < 1 {
        return Err(TopologyError::Empty);
    }
    let mut b = TopologyBuilder::new();
    let s: Vec<SwitchId> = (0..n).map(|_| b.add_switch(4)).collect();
    for w in s.windows(2) {
        b.add_link(w[0], w[1])?;
    }
    for &sw in &s {
        b.add_host(sw)?;
    }
    b.build()
}

/// A single switch with `h` hosts — the degenerate "regular" case where
/// every multicast is one switch hop.
pub fn single_switch(h: usize) -> Result<Topology, TopologyError> {
    if h == 0 {
        return Err(TopologyError::Empty);
    }
    if h > 128 {
        return Err(TopologyError::TooManyNodes(h));
    }
    let mut b = TopologyBuilder::new();
    let s = b.add_switch(h.max(2) as u8);
    for _ in 0..h {
        b.add_host(s)?;
    }
    b.build()
}

/// A star: one core switch connected to `leaves` leaf switches, `hosts_per_leaf`
/// hosts on each leaf and none on the core.
pub fn star(leaves: usize, hosts_per_leaf: usize) -> Result<Topology, TopologyError> {
    if leaves < 1 {
        return Err(TopologyError::Empty);
    }
    let mut b = TopologyBuilder::new();
    let core = b.add_switch((leaves.max(2)) as u8);
    for _ in 0..leaves {
        let leaf = b.add_switch((hosts_per_leaf + 1).max(2) as u8);
        b.add_link(core, leaf)?;
        for _ in 0..hosts_per_leaf {
            b.add_host(leaf)?;
        }
    }
    b.build()
}

/// A ring of `n` switches (n ≥ 3), one host per switch. The up*/down*
/// orientation breaks the ring's symmetry: one link becomes the "cross"
/// link whose two ends sit at equal distance from the root.
pub fn ring(n: usize) -> Result<Topology, TopologyError> {
    if n < 3 {
        return Err(TopologyError::Empty);
    }
    let mut b = TopologyBuilder::new();
    let s: Vec<SwitchId> = (0..n).map(|_| b.add_switch(4)).collect();
    for i in 0..n {
        b.add_link(s[i], s[(i + 1) % n])?;
    }
    for &sw in &s {
        b.add_host(sw)?;
    }
    b.build()
}

/// A two-level Clos-like fabric: `spines` spine switches (no hosts),
/// `leaves` leaf switches each wired to every spine, `hosts_per_leaf`
/// hosts per leaf. The closest thing to a *regular* NOW fabric — useful
/// as a best-case contrast to the random irregular instances.
pub fn two_level(
    spines: usize,
    leaves: usize,
    hosts_per_leaf: usize,
) -> Result<Topology, TopologyError> {
    if spines < 1 || leaves < 1 {
        return Err(TopologyError::Empty);
    }
    let mut b = TopologyBuilder::new();
    let sp: Vec<SwitchId> = (0..spines).map(|_| b.add_switch(leaves.max(2) as u8)).collect();
    for _ in 0..leaves {
        let leaf = b.add_switch((spines + hosts_per_leaf).max(2) as u8);
        for &s in &sp {
            b.add_link(s, leaf)?;
        }
        for _ in 0..hosts_per_leaf {
            b.add_host(leaf)?;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Network;

    #[test]
    fn paper_example_analyzes() {
        let net = Network::analyze(paper_example().unwrap()).unwrap();
        assert_eq!(net.num_switches(), 8);
        assert_eq!(net.num_nodes(), 32);
        net.updown.verify_acyclic(&net.topo).unwrap();
        assert!(net.routing.fully_connected());
    }

    #[test]
    fn chain_has_linear_distances() {
        let net = Network::analyze(chain(5).unwrap()).unwrap();
        use crate::routing::Phase;
        assert_eq!(net.routing.distance(SwitchId(0), Phase::Up, SwitchId(4)), 4);
        assert_eq!(net.routing.distance(SwitchId(4), Phase::Up, SwitchId(0)), 4);
    }

    #[test]
    fn degenerate_sizes_are_errors_not_panics() {
        assert!(chain(0).is_err());
        assert!(single_switch(0).is_err());
        assert!(single_switch(129).is_err());
        assert!(star(0, 3).is_err());
        assert!(ring(2).is_err());
        assert!(two_level(0, 4, 4).is_err());
    }

    #[test]
    fn single_switch_all_local() {
        let net = Network::analyze(single_switch(6).unwrap()).unwrap();
        assert_eq!(net.topo.nodes_at(SwitchId(0)).len(), 6);
        assert!(net.reach.covers(SwitchId(0), crate::NodeMask::all(6)));
    }

    #[test]
    fn star_analyzes() {
        let net = Network::analyze(star(4, 3).unwrap()).unwrap();
        assert_eq!(net.num_switches(), 5);
        assert_eq!(net.num_nodes(), 12);
    }

    #[test]
    fn ring_analyzes_and_offers_two_routes_from_the_far_side() {
        let net = Network::analyze(ring(6).unwrap()).unwrap();
        net.updown.verify_acyclic(&net.topo).unwrap();
        assert!(net.routing.fully_connected());
        // In a 6-ring rooted at S0, S3 is equidistant both ways; the
        // up*/down* rule still leaves at least one pair with route choice.
        use crate::routing::Phase;
        let any_adaptive = (0..6u16).any(|a| {
            (0..6u16).any(|b| {
                a != b
                    && net
                        .routing
                        .next_hops(SwitchId(a), Phase::Up, SwitchId(b))
                        .len()
                        > 1
            })
        });
        assert!(any_adaptive);
    }

    #[test]
    fn two_level_shows_the_updown_root_bottleneck() {
        // A classic up*/down* artifact: with spines S0 and S1 (added
        // first) and BFS rooted at S0, S1 lands *below* the leaves
        // (level 2), so leaf→S1→leaf would be down-then-up — illegal.
        // All leaf-to-leaf traffic is forced through the root spine,
        // even though the physical fabric has two disjoint spines.
        let net = Network::analyze(two_level(2, 4, 4).unwrap()).unwrap();
        assert_eq!(net.num_switches(), 6);
        assert_eq!(net.num_nodes(), 16);
        use crate::routing::Phase;
        assert_eq!(net.updown.level(SwitchId(1)), 2, "second spine below the leaves");
        let hops = net.routing.next_hops(SwitchId(2), Phase::Up, SwitchId(3));
        assert_eq!(hops.len(), 1, "leaf-to-leaf forced through the root");
        assert_eq!(hops[0].next, SwitchId(0));
    }

    #[test]
    fn two_level_covers_from_any_spine() {
        let net = Network::analyze(two_level(2, 3, 2).unwrap()).unwrap();
        let all = crate::NodeMask::all(net.num_nodes());
        assert!(net.reach.covers(net.updown.root(), all));
    }
}
