//! Cross-structure consistency: the reachability strings, routing
//! tables, and up/down orientation must describe the same network.

use irrnet_topology::{
    gen, zoo, Network, NodeMask, Phase, RandomTopologyConfig, SwitchId,
};

fn networks() -> Vec<Network> {
    let mut v: Vec<Network> = (0..6u64)
        .map(|s| {
            Network::analyze(gen::generate(&RandomTopologyConfig::paper_default(s)).unwrap())
                .unwrap()
        })
        .collect();
    v.push(Network::analyze(zoo::paper_example().unwrap()).unwrap());
    v.push(Network::analyze(zoo::ring(6).unwrap()).unwrap());
    v.push(Network::analyze(zoo::star(4, 3).unwrap()).unwrap());
    v
}

/// `cover(s)` (the union of reachability strings) must equal the set of
/// nodes whose switch is reachable from `s` in the Down phase — two
/// independently computed views of "where can a descending worm go".
#[test]
fn reachability_agrees_with_down_phase_routing() {
    for net in networks() {
        for (s, _) in net.topo.switches() {
            let mut from_routing = NodeMask::EMPTY;
            for (n, h) in net.topo.hosts() {
                if net.routing.distance(s, Phase::Down, h.switch)
                    != irrnet_topology::routing::UNREACHABLE
                {
                    from_routing.insert(n);
                }
            }
            assert_eq!(
                net.reach.cover(s),
                from_routing,
                "switch {s} cover mismatch"
            );
        }
    }
}

/// The up-only plane must agree with the up/down orientation: a one-hop
/// up-only distance exists exactly where an up link exists.
#[test]
fn up_only_plane_matches_orientation() {
    for net in networks() {
        for (s, _) in net.topo.switches() {
            let up_peers: Vec<SwitchId> = net
                .updown
                .up_links(&net.topo, s)
                .map(|(_, p, _)| p)
                .collect();
            for (_, peer, _) in net.topo.neighbors(s) {
                let d = net.routing.up_only_distance(s, peer);
                if up_peers.contains(&peer) {
                    assert_eq!(d, 1, "up link {s}->{peer} must be 1 up-only hop");
                }
            }
            // And the root is up-only reachable from everywhere.
            assert_ne!(
                net.routing.up_only_distance(s, net.updown.root()),
                irrnet_topology::routing::UNREACHABLE,
                "{s} cannot climb to the root"
            );
        }
    }
}

/// Distances satisfy the triangle property over the legal-route relation:
/// d(a→c) ≤ d(a→b)+d(b→c) need NOT hold under up*/down* (phases!), but
/// the Up-phase distance must never exceed the up-only route through any
/// intermediate apex.
#[test]
fn general_distance_bounded_by_up_then_down() {
    for net in networks() {
        let n = net.topo.num_switches();
        for a in 0..n as u16 {
            for b in 0..n as u16 {
                let (sa, sb) = (SwitchId(a), SwitchId(b));
                let d = net.routing.distance(sa, Phase::Up, sb);
                // Via the root: climb + descend is always legal.
                let up = net.routing.up_only_distance(sa, net.updown.root());
                let down = net.routing.distance(net.updown.root(), Phase::Down, sb);
                assert!(
                    d <= up.saturating_add(down),
                    "{sa}->{sb}: {d} > {up}+{down} via root"
                );
            }
        }
    }
}

/// Every node pair is connected by a legal route whose length is at most
/// the diameter bound 2·height of the BFS tree.
#[test]
fn diameter_bounded_by_twice_tree_height() {
    for net in networks() {
        let height = net
            .topo
            .switches()
            .map(|(s, _)| net.updown.level(s))
            .max()
            .unwrap_or(0) as u16;
        let m = irrnet_topology::network_metrics(&net);
        assert!(
            m.diameter <= 2 * height.max(1),
            "diameter {} vs height {height}",
            m.diameter
        );
    }
}
