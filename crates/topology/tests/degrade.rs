//! Up/down reconfiguration over a degrading network: `Network::degrade`
//! must re-orient the surviving graph, re-elect a root when the old one
//! dies, and report partitions as structured errors.

use irrnet_topology::routing::{Phase, UNREACHABLE};
use irrnet_topology::{
    zoo, FaultKind, FaultStatus, Network, NodeId, SwitchId, TopologyError,
};

#[test]
fn healthy_degrade_is_identity() {
    let net = Network::analyze(zoo::paper_example().unwrap()).unwrap();
    let st = FaultStatus::healthy(&net.topo);
    let d = net.degrade(&st).unwrap();
    assert_eq!(d.updown.root(), net.updown.root());
    assert!(d.routing.fully_connected());
}

#[test]
fn link_kill_reroutes_around_the_dead_link() {
    let net = Network::analyze(zoo::ring(6).unwrap()).unwrap();
    let mut st = FaultStatus::healthy(&net.topo);
    // Kill the link S0-S1; the ring still connects everything the long
    // way round, so every switch pair must stay mutually reachable.
    let l01 = net
        .topo
        .links()
        .find(|(_, l)| {
            let (a, b) = (l.a.0, l.b.0);
            (a, b) == (SwitchId(0), SwitchId(1)) || (a, b) == (SwitchId(1), SwitchId(0))
        })
        .map(|(id, _)| id)
        .unwrap();
    st.kill(&net.topo, FaultKind::Link(l01));
    let d = net.degrade(&st).unwrap();
    for a in 0..6u16 {
        for b in 0..6u16 {
            if a != b {
                let dist = d.routing.distance(SwitchId(a), Phase::Up, SwitchId(b));
                assert_ne!(dist, UNREACHABLE, "S{a} -> S{b} lost");
            }
        }
    }
    // S0->S1 must now go the long way: five hops, not one.
    assert_eq!(d.routing.distance(SwitchId(0), Phase::Up, SwitchId(1)), 5);
    // Tree worms must not fan out across the dead link either.
    let all = irrnet_topology::NodeMask::all(net.topo.num_nodes());
    assert!(d.reach.covers(d.updown.root(), all));
}

#[test]
fn root_death_reelects_lowest_alive_switch() {
    let net = Network::analyze(zoo::paper_example().unwrap()).unwrap();
    let mut st = FaultStatus::healthy(&net.topo);
    st.kill(&net.topo, FaultKind::Switch(net.updown.root()));
    assert!(st.is_connected(&net.topo), "fixture must survive the root kill");
    let d = net.degrade(&st).unwrap();
    let expected = st.alive_switches().next().unwrap();
    assert_eq!(d.updown.root(), expected);
    // Dead switch rows are unreachable; alive pairs all route.
    let dead = net.updown.root();
    for a in st.alive_switches() {
        for b in st.alive_switches() {
            if a != b {
                assert_ne!(d.routing.distance(a, Phase::Up, b), UNREACHABLE);
            }
        }
        assert_eq!(d.routing.distance(a, Phase::Up, dead), UNREACHABLE);
    }
}

#[test]
fn bridge_kill_reports_structured_partition() {
    // chain(4): every link is a bridge; killing S1-S2 strands S2, S3 and
    // their hosts n2, n3.
    let net = Network::analyze(zoo::chain(4).unwrap()).unwrap();
    let mut st = FaultStatus::healthy(&net.topo);
    let bridge = net
        .topo
        .links()
        .find(|(_, l)| {
            let (a, b) = (l.a.0, l.b.0);
            a.min(b) == SwitchId(1) && a.max(b) == SwitchId(2)
        })
        .map(|(id, _)| id)
        .unwrap();
    st.kill(&net.topo, FaultKind::Link(bridge));
    match net.degrade(&st) {
        Err(TopologyError::PartitionedNetwork { unreachable_switches, unreachable_hosts }) => {
            assert_eq!(unreachable_switches, vec![SwitchId(2), SwitchId(3)]);
            assert_eq!(unreachable_hosts, vec![NodeId(2), NodeId(3)]);
        }
        other => panic!("expected PartitionedNetwork, got {other:?}"),
    }
}

/// The incremental reachability recompute behind `degrade` must be
/// indistinguishable from a full masked recompute — same encodings,
/// same covers, same partitions — across random topologies, random
/// fault sequences, and chained degrades (degrade of a degraded net).
#[test]
fn incremental_reach_matches_full_recompute() {
    use irrnet_topology::reach::Reachability;
    use irrnet_topology::{gen, FaultPlan, RandomFaultConfig, RandomTopologyConfig};

    for seed in 0..8u64 {
        let cfg = RandomTopologyConfig::paper_default(seed);
        let net0 = Network::analyze(gen::generate(&cfg).unwrap()).unwrap();
        let plan = FaultPlan::random(
            &net0.topo,
            &RandomFaultConfig {
                kills: 3,
                switch_every: 3,
                window: (0, 1000),
                seed: seed ^ 0xFA17,
                protect: vec![],
            },
        );
        let mut st = FaultStatus::healthy(&net0.topo);
        let mut net = net0;
        for ev in plan.events() {
            st.kill(&net.topo, ev.kind);
            // Chained: degrade from the previous (possibly degraded) net.
            let d = match net.degrade(&st) {
                Ok(d) => d,
                Err(TopologyError::PartitionedNetwork { .. }) => break,
                Err(e) => panic!("unexpected degrade error: {e}"),
            };
            let full = Reachability::compute_masked(&d.topo, &d.updown, &st).unwrap();
            assert_eq!(d.reach, full, "seed {seed}, fault at {}", ev.at);
            net = d;
        }
    }
}

/// A fault far from the root leaves the untouched subtrees alone: the
/// incremental recompute must visit strictly fewer switches than a full
/// pass.
#[test]
fn incremental_recompute_skips_clean_switches() {
    use irrnet_topology::reach::Reachability;
    use irrnet_topology::UpDown;

    // chain(6) with a leaf-end link kill: only switches above the dead
    // link change; the recompute must not touch the whole chain... the
    // kill partitions a chain, so use ring(8) instead (stays connected).
    let net = Network::analyze(zoo::ring(8).unwrap()).unwrap();
    let mut st = FaultStatus::healthy(&net.topo);
    let far_link = net
        .topo
        .links()
        .find(|(_, l)| {
            let (a, b) = (l.a.0, l.b.0);
            a.min(b) == SwitchId(3) && a.max(b) == SwitchId(4)
        })
        .map(|(id, _)| id)
        .unwrap();
    st.kill(&net.topo, FaultKind::Link(far_link));
    let updown = UpDown::compute_masked(&net.topo, net.updown.root(), &st).unwrap();
    let (reach, recomputed) = net
        .reach
        .recompute_incremental(&net.topo, &updown, &st, &net.updown, None)
        .unwrap();
    let full = Reachability::compute_masked(&net.topo, &updown, &st).unwrap();
    assert_eq!(reach, full);
    assert!(
        recomputed < net.topo.num_switches(),
        "recomputed all {recomputed} switches despite a localized fault"
    );
}

#[test]
fn switch_kill_strands_its_hosts_only() {
    // star(4, 2): killing one leaf switch takes down its two hosts but
    // leaves the rest routable.
    let net = Network::analyze(zoo::star(4, 2).unwrap()).unwrap();
    let mut st = FaultStatus::healthy(&net.topo);
    let victim = SwitchId(2); // a leaf
    st.kill(&net.topo, FaultKind::Switch(victim));
    let d = net.degrade(&st).unwrap();
    for (n, h) in net.topo.hosts() {
        if h.switch == victim {
            assert!(!st.host_up(&net.topo, n));
        } else {
            assert!(st.host_up(&net.topo, n));
            assert!(d.reach.covers(d.updown.root(), irrnet_topology::NodeMask::single(n)));
        }
    }
}
