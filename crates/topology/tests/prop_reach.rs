//! Property suite for the adaptive [`NodeMask`] representation and the
//! [`ReachSet`] interval/bitset codec, checked against a plain `Vec<bool>`
//! bitset oracle: random round-trips, set-algebra agreement, covering and
//! partition agreement on generated giant topologies, and the
//! inline/spilled crossover boundary.

use irrnet_topology::gen::{ExtraLinks, RandomTopologyConfig};
use irrnet_topology::reach::ReachSet;
use irrnet_topology::rng::SmallRng;
use irrnet_topology::{gen, Network, NodeId, NodeMask, PortIdx};

/// Draw a random set over `0..n` with roughly `density` fill, as both the
/// mask under test and the oracle.
fn random_set(rng: &mut SmallRng, n: usize, density_pct: u64) -> (NodeMask, Vec<bool>) {
    let mut oracle = vec![false; n];
    let mut mask = NodeMask::EMPTY;
    for (i, slot) in oracle.iter_mut().enumerate() {
        if rng.gen_range(0..100u64) < density_pct {
            *slot = true;
            mask.insert(NodeId(i as u16));
        }
    }
    (mask, oracle)
}

fn oracle_mask(oracle: &[bool]) -> NodeMask {
    NodeMask::from_nodes(
        oracle
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| NodeId(i as u16)),
    )
}

/// System sizes straddling the inline crossover plus giant-fabric scale.
const SIZES: [usize; 7] = [5, 64, 127, 128, 129, 1024, 10_000];

#[test]
fn mask_roundtrips_against_oracle() {
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    for &n in &SIZES {
        for density in [0, 3, 50, 97] {
            let (mask, oracle) = random_set(&mut rng, n, density);
            assert_eq!(mask, oracle_mask(&oracle), "n={n} d={density}");
            assert_eq!(mask.len(), oracle.iter().filter(|&&b| b).count());
            for probe in [0usize, n / 2, n.saturating_sub(1)] {
                assert_eq!(mask.contains(NodeId(probe as u16)), oracle[probe]);
            }
            // Iteration yields exactly the oracle's members, ascending.
            let members: Vec<usize> = mask.iter().map(|x| x.idx()).collect();
            let expect: Vec<usize> = (0..n).filter(|&i| oracle[i]).collect();
            assert_eq!(members, expect);
        }
    }
}

#[test]
fn mask_algebra_agrees_with_oracle() {
    let mut rng = SmallRng::seed_from_u64(0xA16B);
    for &n in &SIZES {
        let (a, oa) = random_set(&mut rng, n, 30);
        let (b, ob) = random_set(&mut rng, n, 30);
        let union: Vec<bool> = (0..n).map(|i| oa[i] || ob[i]).collect();
        let inter: Vec<bool> = (0..n).map(|i| oa[i] && ob[i]).collect();
        let diff: Vec<bool> = (0..n).map(|i| oa[i] && !ob[i]).collect();
        assert_eq!(a.union(&b), oracle_mask(&union), "n={n}");
        assert_eq!(a.intersection(&b), oracle_mask(&inter), "n={n}");
        assert_eq!(a.difference(&b), oracle_mask(&diff), "n={n}");
        assert_eq!(a.covers(&b), (0..n).all(|i| !ob[i] || oa[i]), "n={n}");
        assert_eq!(a.intersects(&b), (0..n).any(|i| oa[i] && ob[i]), "n={n}");
        assert!(a.union(&b).covers(&a) && a.union(&b).covers(&b));
        assert!(a.covers(&a.intersection(&b)));
    }
}

#[test]
fn reachset_roundtrips_against_oracle() {
    let mut rng = SmallRng::seed_from_u64(0xC0DEC);
    for &n in &SIZES {
        for density in [0, 2, 40, 95] {
            let (mask, oracle) = random_set(&mut rng, n, density);
            let rs = ReachSet::from_mask(&mask);
            assert_eq!(rs.to_mask(), mask, "n={n} d={density}");
            assert_eq!(rs.len(), mask.len());
            assert_eq!(rs.is_empty(), mask.is_empty());
            for probe in 0..n {
                assert_eq!(rs.contains(NodeId(probe as u16)), oracle[probe]);
            }
            // covers / intersect against random query sets.
            for qd in [5, 60] {
                let (q, oq) = random_set(&mut rng, n, qd);
                assert_eq!(
                    rs.covers_mask(&q),
                    (0..n).all(|i| !oq[i] || oracle[i]),
                    "n={n} d={density} qd={qd}"
                );
                let inter: Vec<bool> = (0..n).map(|i| oracle[i] && oq[i]).collect();
                assert_eq!(rs.intersect_mask(&q), oracle_mask(&inter));
            }
        }
    }
}

#[test]
fn reachset_crossover_boundary() {
    // Runs of consecutive members around the 128-bit inline boundary:
    // whatever arm the codec picks, the set semantics must be exact.
    for range in [120..=127usize, 120..=128, 126..=130, 127..=127, 128..=128, 128..=135] {
        let mask = NodeMask::from_nodes(range.clone().map(|i| NodeId(i as u16)));
        let rs = ReachSet::from_mask(&mask);
        assert_eq!(rs.to_mask(), mask, "{range:?}");
        assert_eq!(rs.len(), range.clone().count());
        for probe in 110..140usize {
            assert_eq!(
                rs.contains(NodeId(probe as u16)),
                range.contains(&probe),
                "{range:?} probe {probe}"
            );
        }
        assert!(rs.covers_mask(&mask));
        assert_eq!(rs.intersect_mask(&NodeMask::all(200)), mask);
    }
    // Singleton just past the boundary: 4-byte run vs 17-word bitset.
    let lone = ReachSet::from_mask(&NodeMask::single(NodeId(1023)));
    assert!(matches!(lone, ReachSet::Runs(_)));
    assert_eq!(lone.heap_bytes(), 4);
}

/// A giant generated fabric (>128 hosts, spilled masks everywhere): the
/// reachability queries must agree with their materialized-mask oracles,
/// and the compressed strings must beat the dense layout.
#[test]
fn giant_topology_reach_agrees_with_dense_oracle() {
    let cfg = RandomTopologyConfig {
        num_switches: 200,
        ports_per_switch: 16,
        num_hosts: 2000,
        extra_links: ExtraLinks::Fraction(0.75),
        seed: 9,
    };
    let net = Network::analyze(gen::generate(&cfg).unwrap()).unwrap();
    let mut rng = SmallRng::seed_from_u64(0xFA8);
    let n = net.topo.num_nodes();
    for (s, sw) in net.topo.switches() {
        // cover == union of port strings, via materialized masks.
        let mut union = NodeMask::EMPTY;
        for p in 0..sw.num_ports() {
            union = union.union(net.reach.port(s, PortIdx(p as u8)));
        }
        let cover = net.reach.cover(s);
        assert_eq!(union, cover);
        // covers / take_covered against random destination sets.
        let (q, _) = random_set(&mut rng, n, 10);
        assert_eq!(net.reach.covers(s, &q), cover.covers(&q));
        assert_eq!(net.reach.take_covered(s, &q), cover.intersection(&q));
        // partition: exact cover, disjoint, lowest-port-first.
        let dests = cover.intersection(&q);
        let parts = net.reach.partition(&net.topo, s, &dests);
        let mut seen = NodeMask::EMPTY;
        for (p, m) in &parts {
            assert!(!m.is_empty());
            assert!(seen.intersection(m).is_empty(), "duplicate delivery at {s}");
            assert!(net.reach.port(s, *p).covers(m));
            seen = seen.union(m);
        }
        assert_eq!(seen, dests, "partition must cover exactly at {s}");
    }
    // The whole point at scale: compressed strings are much smaller than
    // the dense bit-string layout.
    assert!(
        net.reach.resident_bytes() < net.reach.dense_equivalent_bytes() / 2,
        "resident {} vs dense {}",
        net.reach.resident_bytes(),
        net.reach.dense_equivalent_bytes()
    );
}
