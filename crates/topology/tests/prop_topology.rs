//! Randomized tests of the topology substrate: any feasible random
//! configuration yields a valid, connected, deadlock-free-routable
//! network with consistent reachability strings.
//!
//! Deterministic port of the original proptest suite (which now lives in
//! `extdeps/tests/`): cases come from the workspace's own PRNG with a
//! fixed master seed, so the run needs no external crates and replays
//! identically everywhere. Historical shrunk failures are pinned
//! explicitly in [`regression_cases`].

use irrnet_topology::rng::SmallRng;
use irrnet_topology::{
    gen, ExtraLinks, Network, NodeMask, Phase, RandomTopologyConfig, SwitchId,
};

/// A feasible random configuration: ports always fit the spanning tree
/// plus hosts.
fn sample_config(rng: &mut SmallRng) -> RandomTopologyConfig {
    let switches = rng.gen_range(2..=12usize);
    let ports = rng.gen_range(4..=8usize) as u8;
    let extra = rng.gen_range(0.0..1.5);
    let seed = rng.next_u64();
    let tree_ports = 2 * (switches - 1);
    let max_hosts = switches * ports as usize - tree_ports;
    let hosts = rng.gen_range(1..=max_hosts.min(64));
    RandomTopologyConfig {
        num_switches: switches,
        ports_per_switch: ports,
        num_hosts: hosts,
        extra_links: ExtraLinks::Fraction(extra),
        seed,
    }
}

/// Shrunk counterexamples found by the original proptest runs; replayed
/// first, before any fresh random cases.
fn regression_cases() -> Vec<RandomTopologyConfig> {
    vec![RandomTopologyConfig {
        num_switches: 12,
        ports_per_switch: 4,
        num_hosts: 1,
        extra_links: ExtraLinks::Fraction(0.0),
        seed: 10848273126184846621,
    }]
}

fn cases(master_seed: u64, n: usize) -> Vec<RandomTopologyConfig> {
    let mut rng = SmallRng::seed_from_u64(master_seed);
    let mut out = regression_cases();
    out.extend((0..n).map(|_| sample_config(&mut rng)));
    out
}

#[test]
fn generated_topologies_validate_and_analyze() {
    for cfg in cases(0xA11CE, 64) {
        let topo = gen::generate(&cfg).expect("feasible config generates");
        topo.validate().expect("generated topology is structurally valid");
        let net = Network::analyze(topo).expect("generated topology analyzes");
        net.updown.verify_acyclic(&net.topo).expect("up orientation acyclic");
        assert!(net.routing.fully_connected(), "{cfg:?}");
    }
}

#[test]
fn next_hops_always_make_progress() {
    for cfg in cases(0xB0B, 24) {
        let net = Network::analyze(gen::generate(&cfg).unwrap()).unwrap();
        let n = net.topo.num_switches();
        for s in 0..n {
            for t in 0..n {
                for phase in [Phase::Up, Phase::Down] {
                    let (s, t) = (SwitchId(s as u16), SwitchId(t as u16));
                    let d = net.routing.distance(s, phase, t);
                    if d == irrnet_topology::routing::UNREACHABLE || d == 0 {
                        continue;
                    }
                    let hops = net.routing.next_hops(s, phase, t);
                    assert!(!hops.is_empty(), "{cfg:?}");
                    for h in hops {
                        // Monotone distance decrease = livelock-free.
                        assert_eq!(
                            net.routing.distance(h.next, h.next_phase, t),
                            d - 1,
                            "{cfg:?}"
                        );
                        // No up traversal after a down traversal.
                        if phase == Phase::Down {
                            assert_eq!(h.next_phase, Phase::Down, "{cfg:?}");
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn root_covers_everything_and_partition_is_exact() {
    for cfg in cases(0xC0FFEE, 64) {
        let net = Network::analyze(gen::generate(&cfg).unwrap()).unwrap();
        let all = NodeMask::all(net.topo.num_nodes());
        let root = net.updown.root();
        assert!(net.reach.covers(root, &all), "{cfg:?}");
        let parts = net.reach.partition(&net.topo, root, &all);
        let mut union = NodeMask::EMPTY;
        for (_, m) in &parts {
            assert!(union.intersection(m).is_empty(), "duplicate coverage: {cfg:?}");
            union = union.union(m);
        }
        assert_eq!(union, all, "{cfg:?}");
    }
}

#[test]
fn cover_equals_union_of_port_strings() {
    for cfg in cases(0xD00D, 64) {
        let net = Network::analyze(gen::generate(&cfg).unwrap()).unwrap();
        for (s, sw) in net.topo.switches() {
            let mut union = NodeMask::EMPTY;
            for p in 0..sw.num_ports() {
                union = union.union(net.reach.port(s, irrnet_topology::PortIdx(p as u8)));
            }
            assert_eq!(union, net.reach.cover(s), "{cfg:?}");
        }
    }
}

#[test]
fn up_distance_decreases_along_up_ports() {
    use irrnet_topology::ApexPlan;
    for cfg in cases(0xE66, 64) {
        let net = Network::analyze(gen::generate(&cfg).unwrap()).unwrap();
        let n_nodes = net.topo.num_nodes();
        // Use the full destination set: apex guidance must be finite
        // everywhere (the root covers everything).
        let plan = ApexPlan::compute(&net.topo, &net.updown, &net.reach, NodeMask::all(n_nodes));
        for (s, _) in net.topo.switches() {
            let d = plan.up_distance(s);
            assert!(d != u16::MAX, "{cfg:?}");
            if d > 0 {
                assert!(!plan.up_ports(s).is_empty(), "{cfg:?}");
            }
        }
    }
}
