//! DSM cache-invalidation workload — the system-level multicast use the
//! paper's introduction highlights ("used for system level operations in
//! distributed shared memory systems, such as for cache invalidations,
//! acknowledgment collection, and synchronization", citing the authors'
//! wormhole-DSM study \[2\]).
//!
//! The generator models a directory-based DSM: a set of shared blocks,
//! each with a home node and a sharer set; writes arrive as a Poisson
//! stream, concentrated on a hot subset of blocks, and every write to a
//! shared block triggers one *invalidation multicast* from the block's
//! home to the current sharers. Invalidations are short (a cache-line
//! address, not data), so this exercises the schemes in the
//! short-message, high-fan-in regime — the opposite corner from the
//! Fig. 8 long-message study.

use crate::single::random_dests;
use crate::stats::Summary;
use irrnet_core::rng::SmallRng;
use irrnet_core::{plan_multicast, SchemeId, SchemeProtocol};
use irrnet_sim::{Cycle, McastId, SimConfig, SimError, Simulator};
use irrnet_topology::{Network, NodeId, NodeMask};
use std::sync::Arc;

/// Parameters of the synthetic DSM workload.
#[derive(Debug, Clone)]
pub struct DsmConfig {
    /// Number of shared blocks in the directory.
    pub blocks: usize,
    /// Mean sharer-set size (sharers per block are 1 + geometric-ish,
    /// clamped to the system size).
    pub mean_sharers: f64,
    /// Fraction of writes that hit the hottest 10% of blocks (locality).
    pub hot_fraction: f64,
    /// System-wide write rate in writes per cycle.
    pub write_rate: f64,
    /// Invalidation message length in flits (an address + tag — short).
    pub inval_flits: u32,
    /// Cold-start cycles excluded from measurement.
    pub warmup: Cycle,
    /// Measurement window.
    pub measure: Cycle,
    /// Post-window drain.
    pub drain: Cycle,
    /// RNG seed.
    pub seed: u64,
    /// Stream the latency distribution through bounded-memory sketches
    /// instead of buffering every sample (ε-approximate quantiles; see
    /// [`crate::stats::STREAM_EPS`]). Off by default — goldens pin the
    /// exact path.
    pub stream_stats: bool,
}

impl Default for DsmConfig {
    fn default() -> Self {
        DsmConfig {
            blocks: 256,
            mean_sharers: 6.0,
            hot_fraction: 0.7,
            write_rate: 2e-4,
            inval_flits: 16,
            warmup: 20_000,
            measure: 200_000,
            drain: 100_000,
            seed: 0xD5,
            stream_stats: false,
        }
    }
}

/// One invalidation event of the generated trace.
#[derive(Debug, Clone)]
pub struct InvalEvent {
    /// Launch cycle.
    pub at: Cycle,
    /// The block's home node (multicast source).
    pub home: NodeId,
    /// Sharers to invalidate (never contains the home).
    pub sharers: NodeMask,
}

/// A generated invalidation trace.
#[derive(Debug, Clone, Default)]
pub struct DsmTrace {
    /// Events in launch order.
    pub events: Vec<InvalEvent>,
}

/// Generate the invalidation trace for a system of `num_nodes` nodes.
pub fn generate_trace(num_nodes: usize, cfg: &DsmConfig) -> DsmTrace {
    assert!(cfg.blocks > 0 && cfg.write_rate > 0.0);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // Directory state: per block, a home node and a sharer set.
    let mut homes = Vec::with_capacity(cfg.blocks);
    let mut sharers = Vec::with_capacity(cfg.blocks);
    for _ in 0..cfg.blocks {
        let home = NodeId(rng.gen_range(0..num_nodes) as u16);
        // Sharer count: 1 + geometric with the requested mean.
        let p = 1.0 / cfg.mean_sharers.max(1.0);
        let mut k = 1usize;
        while k < num_nodes - 1 && rng.gen_range(0.0..1.0) > p {
            k += 1;
        }
        let set = random_dests(&mut rng, num_nodes, k, home);
        homes.push(home);
        sharers.push(set);
    }

    // Poisson write stream over [0, warmup + measure).
    let horizon = (cfg.warmup + cfg.measure) as f64;
    let hot_blocks = (cfg.blocks / 10).max(1);
    let mut t = 0.0f64;
    let mut events = Vec::new();
    loop {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / cfg.write_rate;
        if t >= horizon {
            break;
        }
        let block = if rng.gen_range(0.0..1.0) < cfg.hot_fraction {
            rng.gen_range(0..hot_blocks)
        } else {
            rng.gen_range(0..cfg.blocks)
        };
        events.push(InvalEvent {
            at: t as Cycle,
            home: homes[block],
            sharers: sharers[block].clone(),
        });
    }
    DsmTrace { events }
}

/// Result of replaying a DSM trace under one multicast scheme.
#[derive(Debug, Clone, Copy)]
pub struct DsmResult {
    /// Invalidations launched in the measurement window.
    pub invalidations: usize,
    /// Latency distribution of completed invalidations (launch → last
    /// sharer acknowledged-invalid, i.e. host-level delivery).
    pub latency: Option<Summary>,
    /// True if under 90% completed.
    pub saturated: bool,
}

/// Replay a trace under `scheme`.
pub fn run_dsm(
    net: &Network,
    sim_cfg: &SimConfig,
    scheme: impl Into<SchemeId>,
    cfg: &DsmConfig,
) -> Result<DsmResult, SimError> {
    let scheme = scheme.into();
    let trace = generate_trace(net.topo.num_nodes(), cfg);
    let mut proto = SchemeProtocol::new();
    let mut launches = Vec::with_capacity(trace.events.len());
    for (i, ev) in trace.events.iter().enumerate() {
        let id = McastId(i as u64);
        let plan = plan_multicast(net, sim_cfg, scheme, ev.home, ev.sharers.clone(), cfg.inval_flits);
        proto.add(id, Arc::new(plan));
        launches.push((ev.at, id, ev.sharers.clone()));
    }
    let mut sim = Simulator::new(net, sim_cfg.clone(), proto)?;
    for (at, id, sharers) in launches {
        sim.schedule_multicast(at, id, sharers, cfg.inval_flits);
    }
    let horizon = cfg.warmup + cfg.measure;
    sim.run_until(horizon + cfg.drain)?;
    let stats = sim.stats();
    let mut n = 0usize;
    let mut done = 0usize;
    let mut samples = Vec::new();
    let mut streaming = if cfg.stream_stats {
        Some(crate::stats::StreamingSummary::default_eps())
    } else {
        None
    };
    for r in stats.mcasts.values() {
        if r.launched >= cfg.warmup && r.launched < horizon {
            n += 1;
            if let Some(l) = r.latency() {
                done += 1;
                match &mut streaming {
                    Some(s) => s.push(l as f64),
                    None => samples.push(l as f64),
                }
            }
        }
    }
    Ok(DsmResult {
        invalidations: n,
        latency: match &streaming {
            Some(s) => s.summary(),
            None => Summary::of(&samples),
        },
        saturated: n > 0 && (done as f64) < 0.9 * n as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use irrnet_core::Scheme;
    use irrnet_topology::{gen, RandomTopologyConfig};

    fn net() -> Network {
        Network::analyze(gen::generate(&RandomTopologyConfig::paper_default(0)).unwrap()).unwrap()
    }

    #[test]
    fn trace_is_well_formed() {
        let cfg = DsmConfig::default();
        let t = generate_trace(32, &cfg);
        assert!(!t.events.is_empty());
        let horizon = cfg.warmup + cfg.measure;
        let mut prev = 0;
        for e in &t.events {
            assert!(e.at < horizon);
            assert!(e.at >= prev, "events in launch order");
            prev = e.at;
            assert!(!e.sharers.is_empty());
            assert!(!e.sharers.contains(e.home), "home never invalidates itself");
        }
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let cfg = DsmConfig::default();
        let a = generate_trace(32, &cfg);
        let b = generate_trace(32, &cfg);
        assert_eq!(a.events.len(), b.events.len());
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.home, y.home);
            assert_eq!(x.sharers, y.sharers);
        }
    }

    #[test]
    fn hot_blocks_receive_most_writes() {
        let cfg = DsmConfig { hot_fraction: 0.9, write_rate: 1e-3, ..DsmConfig::default() };
        let t = generate_trace(32, &cfg);
        // With 90% of writes on 10% of blocks, the distinct (home,
        // sharers) pairs seen should be far fewer than events.
        let mut keys: Vec<(u16, Vec<u16>)> = t
            .events
            .iter()
            .map(|e| (e.home.0, e.sharers.iter().map(|n| n.0).collect()))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert!(keys.len() * 3 < t.events.len(), "{} vs {}", keys.len(), t.events.len());
    }

    #[test]
    fn invalidations_complete_under_hardware_multicast() {
        let net = net();
        let sim_cfg = SimConfig::paper_default();
        let r = run_dsm(&net, &sim_cfg, Scheme::TreeWorm, &DsmConfig::default()).unwrap();
        assert!(r.invalidations > 0);
        assert!(!r.saturated, "{r:?}");
        let s = r.latency.unwrap();
        // Short messages, single phase: comfortably under 3k cycles mean.
        assert!(s.mean < 3_000.0, "mean {}", s.mean);
    }

    #[test]
    fn tree_based_invalidation_beats_software_multicast() {
        let net = net();
        let sim_cfg = SimConfig::paper_default();
        let tree = run_dsm(&net, &sim_cfg, Scheme::TreeWorm, &DsmConfig::default()).unwrap();
        let ub = run_dsm(&net, &sim_cfg, Scheme::UBinomial, &DsmConfig::default()).unwrap();
        let (t, u) = (tree.latency.unwrap(), ub.latency.unwrap());
        assert!(
            t.mean < u.mean,
            "tree {:.0} should beat ubinomial {:.0}",
            t.mean,
            u.mean
        );
        assert!(t.p95 < u.p95);
    }
}
