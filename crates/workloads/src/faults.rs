//! Multicast under a degrading network: fault injection, up*/down*
//! reconfiguration, and NI retransmission.
//!
//! The paper's testbed assumes a healthy network; this experiment asks
//! how each multicast scheme behaves when links and switches die *while
//! traffic is in flight*. A seeded, connectivity-preserving
//! [`FaultPlan`] kills components spread across the launch window;
//! worms crossing a dead component are truncated and drained, routing
//! reconfigures over the survivors, and (optionally) source NIs
//! retransmit to destinations whose copy was lost. Every run is a pure
//! function of its seeds: the same config twice gives byte-identical
//! results, and zero kills is byte-identical to a healthy run.

use irrnet_core::rng::SmallRng;
use irrnet_core::{plan_multicast, SchemeId, SchemeProtocol};
use irrnet_sim::{Cycle, McastId, RetxPolicy, SimConfig, SimError, Simulator};
use irrnet_topology::{FaultPlan, Network, RandomFaultConfig};
use std::sync::Arc;

/// Parameters of one fault-injection run.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Multicast degree (destinations per multicast).
    pub degree: usize,
    /// Message length in flits.
    pub message_flits: u32,
    /// Number of multicasts, launched periodically.
    pub mcasts: usize,
    /// Launch spacing in cycles.
    pub interval: Cycle,
    /// Components to kill (0 = healthy run).
    pub kills: usize,
    /// Every `switch_every`-th kill is a whole switch; 0 = links only.
    pub switch_every: usize,
    /// Hard stop for the run (must cover launches + retransmission tail).
    pub horizon: Cycle,
    /// Watchdog recovery budget (stuck worms sacrificed before aborting).
    pub recovery_limit: u32,
    /// Workload RNG seed (sources / destination sets).
    pub seed: u64,
    /// Fault-plan RNG seed (victims).
    pub fault_seed: u64,
    /// Enable NI delivery timeouts + retransmission.
    pub retx: bool,
}

impl FaultConfig {
    /// Defaults for the `ext_f_faults` sweep at a given kill count.
    pub fn paper_default(kills: usize) -> Self {
        FaultConfig {
            degree: 8,
            message_flits: 128,
            mcasts: 24,
            interval: 4_000,
            kills,
            switch_every: 4,
            horizon: 3_000_000,
            recovery_limit: 8,
            seed: 0xF00D,
            fault_seed: 0x5EED,
            retx: true,
        }
    }
}

/// Outcome of one fault-injection run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultResult {
    /// Delivered (multicast, destination) pairs over expected ones; 1.0
    /// when nothing was lost.
    pub delivery_ratio: f64,
    /// Mean latency of the multicasts that completed (`None` if none).
    pub mean_latency: Option<f64>,
    /// Multicasts launched.
    pub launched: usize,
    /// Multicasts fully delivered.
    pub completed: usize,
    /// Flits dropped at dead components / purged worm tails.
    pub flits_dropped: u64,
    /// Worm copies truncated or discarded.
    pub worms_killed: u64,
    /// Packets re-sent by source NIs on delivery timeout.
    pub retransmissions: u64,
    /// Deliveries suppressed as duplicates (original + retransmit both
    /// arrived).
    pub duplicate_deliveries: u64,
    /// Stuck worms sacrificed by the watchdog's recovery mode.
    pub watchdog_recoveries: u64,
    /// Cycles the engine actually iterated.
    pub cycles_run: u64,
}

/// Run one fault-injection experiment.
///
/// Multicast plans are computed on the *healthy* network — that is the
/// point: faults strike mid-flight and the engine must cope (truncate,
/// reconfigure, retransmit). The fault window starts after the first
/// eighth of the launch span so early traffic establishes a baseline.
pub fn run_faulted(
    net: &Network,
    cfg: &SimConfig,
    scheme: impl Into<SchemeId>,
    fc: &FaultConfig,
) -> Result<FaultResult, SimError> {
    let scheme = scheme.into();
    let n = net.topo.num_nodes();
    let mut rng = SmallRng::seed_from_u64(fc.seed);
    let mut proto = SchemeProtocol::new();
    let mut launches = Vec::with_capacity(fc.mcasts);
    for i in 0..fc.mcasts {
        let (source, dests) = crate::single::random_mcast(&mut rng, n, fc.degree);
        let id = McastId(i as u64);
        let plan = plan_multicast(net, cfg, scheme, source, dests.clone(), fc.message_flits);
        proto.add(id, Arc::new(plan));
        launches.push((i as Cycle * fc.interval, id, dests));
    }

    let mut run_cfg = cfg.clone();
    run_cfg.watchdog_recovery_limit = fc.recovery_limit;
    let mut sim = Simulator::new(net, run_cfg, proto)?;
    for (t, id, dests) in launches {
        sim.schedule_multicast(t, id, dests, fc.message_flits);
    }

    if fc.kills > 0 {
        let span = (fc.mcasts as Cycle * fc.interval).max(1);
        let plan = FaultPlan::random(
            &net.topo,
            &RandomFaultConfig {
                kills: fc.kills,
                switch_every: fc.switch_every,
                window: (span / 8, span),
                seed: fc.fault_seed,
                protect: Vec::new(),
            },
        );
        sim.install_faults(&plan);
        if fc.retx {
            sim.enable_retransmission(RetxPolicy::default_for(cfg));
        }
    }

    sim.run_until(fc.horizon)?;

    let stats = sim.stats();
    let mut samples = Vec::new();
    let mut completed = 0usize;
    for r in stats.mcasts.values() {
        if r.completed.is_some() {
            completed += 1;
        }
        if let Some(l) = r.latency() {
            samples.push(l as f64);
        }
    }
    let mean_latency = if samples.is_empty() {
        None
    } else {
        Some(samples.iter().sum::<f64>() / samples.len() as f64)
    };
    Ok(FaultResult {
        delivery_ratio: stats.delivery_ratio(),
        mean_latency,
        launched: stats.mcasts.len(),
        completed,
        flits_dropped: stats.net.flits_dropped,
        worms_killed: stats.net.worms_killed,
        retransmissions: stats.net.retransmissions,
        duplicate_deliveries: stats.net.duplicate_deliveries,
        watchdog_recoveries: stats.net.watchdog_recoveries,
        cycles_run: stats.cycles_run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use irrnet_core::Scheme;
    use irrnet_topology::zoo;

    fn quick(kills: usize) -> FaultConfig {
        FaultConfig {
            mcasts: 12,
            interval: 3_000,
            horizon: 2_000_000,
            ..FaultConfig::paper_default(kills)
        }
    }

    #[test]
    fn zero_kills_is_lossless() {
        let net = Network::analyze(zoo::paper_example().unwrap()).unwrap();
        let cfg = SimConfig::paper_default();
        let r = run_faulted(&net, &cfg, Scheme::TreeWorm, &quick(0)).unwrap();
        assert_eq!(r.delivery_ratio, 1.0, "{r:?}");
        assert_eq!(r.completed, r.launched);
        assert_eq!(r.flits_dropped, 0);
        assert_eq!(r.worms_killed, 0);
        assert_eq!(r.retransmissions, 0);
    }

    #[test]
    fn faulted_runs_are_deterministic_per_seed() {
        let net = Network::analyze(zoo::paper_example().unwrap()).unwrap();
        let cfg = SimConfig::paper_default();
        for scheme in [Scheme::TreeWorm, Scheme::NiFpfs, Scheme::UBinomial] {
            let a = run_faulted(&net, &cfg, scheme, &quick(3)).unwrap();
            let b = run_faulted(&net, &cfg, scheme, &quick(3)).unwrap();
            assert_eq!(a, b, "{scheme:?}");
        }
    }

    #[test]
    fn kills_cause_losses_and_recovery_activity() {
        let net = Network::analyze(zoo::paper_example().unwrap()).unwrap();
        let cfg = SimConfig::paper_default();
        let r = run_faulted(&net, &cfg, Scheme::TreeWorm, &quick(4)).unwrap();
        // Something must have died mid-flight across 12 multicasts with 4
        // kills in the launch window.
        assert!(r.worms_killed > 0 || r.flits_dropped > 0, "{r:?}");
        assert!(r.delivery_ratio <= 1.0);
    }

    #[test]
    fn retransmission_improves_delivery() {
        let net = Network::analyze(zoo::paper_example().unwrap()).unwrap();
        let cfg = SimConfig::paper_default();
        let mut with = quick(4);
        with.retx = true;
        let mut without = quick(4);
        without.retx = false;
        let a = run_faulted(&net, &cfg, Scheme::UBinomial, &with).unwrap();
        let b = run_faulted(&net, &cfg, Scheme::UBinomial, &without).unwrap();
        assert!(a.delivery_ratio >= b.delivery_ratio, "with={a:?} without={b:?}");
    }
}
