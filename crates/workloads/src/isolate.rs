//! Failure isolation for independent work units.
//!
//! The campaign runner executes hundreds of independent simulation units
//! per run; one panicking or runaway unit must not take the whole
//! campaign down with it. These primitives convert the two failure modes
//! into values:
//!
//! * [`catch_panics`] — run a closure under `catch_unwind`, turning a
//!   panic into [`IsolationError::Panicked`] with the payload message;
//! * [`run_with_deadline`] — run a closure on its own thread with a
//!   wall-clock budget, turning an overrun into
//!   [`IsolationError::TimedOut`]. The runaway thread is detached (it
//!   holds only `Arc`s into shared state, so letting it finish in the
//!   background is safe); its eventual result is discarded.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::Duration;

/// Why an isolated unit of work failed to produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsolationError {
    /// The closure panicked; carries the rendered panic payload.
    Panicked(String),
    /// The closure exceeded its wall-clock budget.
    TimedOut(Duration),
}

impl std::fmt::Display for IsolationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsolationError::Panicked(msg) => write!(f, "panicked: {msg}"),
            IsolationError::TimedOut(d) => {
                write!(f, "exceeded its {:.1}s wall-clock budget", d.as_secs_f64())
            }
        }
    }
}

impl std::error::Error for IsolationError {}

/// Render a `catch_unwind` payload the way the default panic hook does.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f`, converting a panic into [`IsolationError::Panicked`].
///
/// Uses `AssertUnwindSafe`: callers hand in closures over `Arc`-shared
/// immutable state (networks, options), so a unwound unit cannot leave
/// torn state behind for its siblings.
pub fn catch_panics<R>(f: impl FnOnce() -> R) -> Result<R, IsolationError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| IsolationError::Panicked(panic_message(p)))
}

/// Run `f` on a fresh thread with a wall-clock `budget`, catching panics
/// as well. On overrun the worker thread is detached — it keeps running
/// to completion in the background (holding only its own `Arc`s), but
/// its result is dropped.
pub fn run_with_deadline<R: Send + 'static>(
    budget: Duration,
    f: impl FnOnce() -> R + Send + 'static,
) -> Result<R, IsolationError> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        // A send can only fail if the caller timed out and dropped the
        // receiver; the result is discarded either way.
        let _ = tx.send(catch_panics(f));
    });
    match rx.recv_timeout(budget) {
        Ok(r) => r,
        Err(mpsc::RecvTimeoutError::Timeout) => Err(IsolationError::TimedOut(budget)),
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The worker died without sending — only possible if the
            // catch_unwind machinery itself aborted.
            Err(IsolationError::Panicked("worker thread vanished".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catches_value_returns() {
        assert_eq!(catch_panics(|| 42), Ok(42));
    }

    #[test]
    fn catches_str_and_string_panics() {
        let e = catch_panics(|| -> u32 { panic!("boom") }).unwrap_err();
        assert_eq!(e, IsolationError::Panicked("boom".into()));
        let e = catch_panics(|| -> u32 { panic!("fmt {}", 7) }).unwrap_err();
        assert_eq!(e, IsolationError::Panicked("fmt 7".into()));
    }

    #[test]
    fn deadline_passes_fast_work_through() {
        let r = run_with_deadline(Duration::from_secs(10), || 7u64);
        assert_eq!(r, Ok(7));
    }

    #[test]
    fn deadline_times_out_slow_work() {
        let r = run_with_deadline(Duration::from_millis(20), || {
            std::thread::sleep(Duration::from_secs(5));
            0u64
        });
        assert_eq!(r, Err(IsolationError::TimedOut(Duration::from_millis(20))));
    }

    #[test]
    fn deadline_catches_panics() {
        let r = run_with_deadline(Duration::from_secs(10), || -> u32 { panic!("late boom") });
        assert_eq!(r, Err(IsolationError::Panicked("late boom".into())));
    }
}
