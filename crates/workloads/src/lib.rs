//! Experiment harness for the ICPP '98 reproduction: single-multicast
//! latency studies (§4.2), multicast load/saturation studies (§4.3),
//! parallel parameter sweeps, and figure-shaped reporting.
//!
//! The per-figure binaries in `irrnet-bench` are thin wrappers over this
//! crate; using it directly looks like:
//!
//! ```
//! use irrnet_core::Scheme;
//! use irrnet_sim::SimConfig;
//! use irrnet_topology::{gen, Network, RandomTopologyConfig};
//! use irrnet_workloads::single::mean_single_latency;
//!
//! let net = Network::analyze(
//!     gen::generate(&RandomTopologyConfig::paper_default(0)).unwrap(),
//! ).unwrap();
//! let cfg = SimConfig::paper_default();
//! let lat = mean_single_latency(&net, &cfg, Scheme::TreeWorm, 8, 128, 3, 0).unwrap();
//! assert!(lat > 0.0);
//! ```

pub mod dsm;
pub mod faults;
pub mod isolate;
pub mod load;
pub mod report;
pub mod single;
pub mod stats;
pub mod sweep;
pub mod transient;

pub use dsm::{generate_trace, run_dsm, DsmConfig, DsmResult, DsmTrace};
pub use faults::{run_faulted, FaultConfig, FaultResult};
pub use isolate::{catch_panics, run_with_deadline, IsolationError};
pub use load::{run_load, LoadConfig, LoadResult};
pub use report::Series;
pub use single::{mean_single_latency, random_dests, random_mcast, run_single, SingleResult};
pub use stats::{quantile, GkSketch, OnlineStats, StreamingSummary, Summary, STREAM_EPS};
pub use sweep::{
    build_networks, default_seeds, par_run, par_run_with, point_seed, single_sweep,
    single_sweep_serial, SinglePoint, SweepRow,
};
pub use transient::{run_transient, TransientConfig, TransientResult};
