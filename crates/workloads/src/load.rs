//! Multicast latency under increasing applied load (§4.3).
//!
//! Open-loop traffic: every node generates multicasts with exponential
//! inter-arrival times and uniformly random destination sets of a fixed
//! degree. Following the paper, the x-axis is the *effective applied
//! load* — for a multicast of degree `d` and per-node injection load `l`
//! (fraction of a node's link bandwidth spent on message payloads), the
//! effective applied load is `l · d`, since every generated flit is
//! delivered `d` times.
//!
//! Simulations run for a cold-start (warm-up) period followed by a
//! measurement window; latency is averaged over multicasts *launched* in
//! the window, and a run is flagged saturated when too few of them
//! complete by the end of the run.

use irrnet_core::rng::SmallRng;
use irrnet_core::{plan_multicast, SchemeId, SchemeProtocol};
use irrnet_sim::{Cycle, McastId, SimConfig, SimError, Simulator};
use irrnet_topology::{Network, NodeId};
use std::sync::Arc;



/// Parameters of one load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Multicast degree (destinations per multicast); the paper uses
    /// 8-way and 16-way.
    pub degree: usize,
    /// Message length in flits.
    pub message_flits: u32,
    /// Effective applied load (per-node injection load × degree).
    pub effective_load: f64,
    /// Cold-start cycles excluded from measurement (paper: 100,000).
    pub warmup: Cycle,
    /// Measurement window length (paper: ≥ 1,000,000 total run).
    pub measure: Cycle,
    /// Extra cycles after the window to let measured multicasts finish.
    pub drain: Cycle,
    /// Workload RNG seed.
    pub seed: u64,
    /// Stream the latency distribution through bounded-memory sketches
    /// ([`crate::stats::StreamingSummary`]) instead of buffering every
    /// sample. Quantiles become ε-approximate (rank error ≤ ⌈εn⌉ at
    /// ε = [`crate::stats::STREAM_EPS`]); off by default — the exact
    /// buffered path is what the goldens are pinned against.
    pub stream_stats: bool,
}

impl LoadConfig {
    /// Paper-shaped defaults at a given degree and load.
    pub fn paper_default(degree: usize, effective_load: f64) -> Self {
        LoadConfig {
            degree,
            message_flits: 128,
            effective_load,
            warmup: 100_000,
            measure: 900_000,
            drain: 300_000,
            seed: 0xF00D,
            stream_stats: false,
        }
    }

    /// Per-node multicast generation rate in messages per cycle.
    pub fn msgs_per_cycle_per_node(&self) -> f64 {
        self.effective_load / (self.degree as f64 * self.message_flits as f64)
    }
}

/// Outcome of one load run.
#[derive(Debug, Clone, Copy)]
pub struct LoadResult {
    /// Mean latency of multicasts launched in the measurement window that
    /// completed before the run ended (`None` if none completed).
    pub mean_latency: Option<f64>,
    /// Multicasts launched in the window.
    pub launched: usize,
    /// Of those, how many completed.
    pub completed: usize,
    /// True when the network could not keep up (completion rate below
    /// 90% — latencies past this point are censored and the paper's
    /// curves shoot up).
    pub saturated: bool,
    /// Distribution of the measured latencies (mean/σ/percentiles), when
    /// any multicast completed.
    pub latency: Option<crate::stats::Summary>,
    /// Cycles the engine actually iterated (event jumps excluded) — the
    /// work metric reported by `irrnet-run bench`.
    pub cycles_run: u64,
}

/// Run one open-loop multicast load experiment.
pub fn run_load(
    net: &Network,
    cfg: &SimConfig,
    scheme: impl Into<SchemeId>,
    lc: &LoadConfig,
) -> Result<LoadResult, SimError> {
    let scheme = scheme.into();
    let n = net.topo.num_nodes();
    let rate = lc.msgs_per_cycle_per_node();
    assert!(rate > 0.0, "load must be positive");
    let horizon = lc.warmup + lc.measure;
    let mut rng = SmallRng::seed_from_u64(lc.seed);

    // Pre-generate all arrivals (open loop: independent of network state).
    let mut arrivals: Vec<(Cycle, NodeId)> = Vec::new();
    for node in 0..n {
        let mut t = 0.0f64;
        loop {
            // Exponential inter-arrival via inverse transform.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / rate;
            if t >= horizon as f64 {
                break;
            }
            arrivals.push((t as Cycle, NodeId(node as u16)));
        }
    }
    arrivals.sort_unstable_by_key(|&(t, n)| (t, n.0));

    let mut proto = SchemeProtocol::new();
    let mut launches = Vec::with_capacity(arrivals.len());
    for (i, &(t, source)) in arrivals.iter().enumerate() {
        let dests = crate::single::random_dests(&mut rng, n, lc.degree, source);
        let id = McastId(i as u64);
        let plan = plan_multicast(net, cfg, scheme, source, dests.clone(), lc.message_flits);
        proto.add(id, Arc::new(plan));
        launches.push((t, id, dests));
    }

    let mut sim = Simulator::new(net, cfg.clone(), proto)?;
    for (t, id, dests) in launches {
        sim.schedule_multicast(t, id, dests, lc.message_flits);
    }
    sim.run_until(horizon + lc.drain)?;

    let stats = sim.stats();
    let from = lc.warmup;
    let to = horizon;
    let mean_latency = stats.mean_latency_in_window(from, to);
    let mut launched = 0usize;
    let mut completed = 0usize;
    // Streaming mode folds each latency into O((1/ε)·log(εn)) sketch
    // state as it is seen; the exact mode buffers for the sort-based
    // quantiles the goldens pin.
    let mut samples = Vec::new();
    let mut streaming =
        if lc.stream_stats { Some(crate::stats::StreamingSummary::default_eps()) } else { None };
    for r in stats.mcasts.values() {
        if r.launched >= from && r.launched < to {
            launched += 1;
            if r.completed.is_some() {
                completed += 1;
            }
            if let Some(l) = r.latency() {
                match &mut streaming {
                    Some(s) => s.push(l as f64),
                    None => samples.push(l as f64),
                }
            }
        }
    }
    let saturated = launched > 0 && (completed as f64) < 0.9 * launched as f64;
    let latency = match &streaming {
        Some(s) => s.summary(),
        None => crate::stats::Summary::of(&samples),
    };
    Ok(LoadResult {
        mean_latency,
        launched,
        completed,
        saturated,
        latency,
        cycles_run: stats.cycles_run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use irrnet_core::Scheme;
    use irrnet_topology::zoo;

    fn quick_lc(load: f64) -> LoadConfig {
        LoadConfig {
            degree: 4,
            message_flits: 128,
            effective_load: load,
            warmup: 20_000,
            measure: 120_000,
            drain: 80_000,
            seed: 7,
            stream_stats: false,
        }
    }

    #[test]
    fn streaming_stats_agree_with_exact_path() {
        let net = Network::analyze(zoo::paper_example().unwrap()).unwrap();
        let cfg = SimConfig::paper_default();
        let exact = run_load(&net, &cfg, Scheme::TreeWorm, &quick_lc(0.1)).unwrap();
        let mut lc = quick_lc(0.1);
        lc.stream_stats = true;
        let streamed = run_load(&net, &cfg, Scheme::TreeWorm, &lc).unwrap();
        // The run itself is identical; only the summary path differs.
        assert_eq!(exact.launched, streamed.launched);
        assert_eq!(exact.completed, streamed.completed);
        assert_eq!(exact.mean_latency, streamed.mean_latency);
        let (e, s) = (exact.latency.unwrap(), streamed.latency.unwrap());
        assert_eq!(e.n, s.n);
        assert!((e.mean - s.mean).abs() / e.mean < 1e-9);
        assert_eq!((e.min, e.max), (s.min, s.max));
        // Quantiles within the ε rank bound: with a few hundred samples
        // and ε = 0.001, ⌈εn⌉ = 1 rank of slack.
        let slack = (e.max - e.min) * 0.25 + 1.0;
        assert!((e.p50 - s.p50).abs() <= slack, "p50 {} vs {}", e.p50, s.p50);
        assert!((e.p99 - s.p99).abs() <= slack, "p99 {} vs {}", e.p99, s.p99);
    }

    #[test]
    fn light_load_is_unsaturated_and_near_isolated_latency() {
        let net = Network::analyze(zoo::paper_example().unwrap()).unwrap();
        let cfg = SimConfig::paper_default();
        let r = run_load(&net, &cfg, Scheme::TreeWorm, &quick_lc(0.02)).unwrap();
        assert!(!r.saturated, "{r:?}");
        assert!(r.launched > 0);
        let lat = r.mean_latency.unwrap();
        // Isolated 4-way tree multicast is ~1.5k cycles; light load should
        // be within 3x of that.
        assert!(lat < 5_000.0, "latency {lat}");
    }

    #[test]
    fn heavy_load_saturates() {
        let net = Network::analyze(zoo::paper_example().unwrap()).unwrap();
        let cfg = SimConfig::paper_default();
        // Far beyond the unicast saturation point of ~0.8.
        let r = run_load(&net, &cfg, Scheme::UBinomial, &quick_lc(3.0)).unwrap();
        assert!(r.saturated, "{r:?}");
    }

    #[test]
    fn latency_grows_with_load() {
        let net = Network::analyze(zoo::paper_example().unwrap()).unwrap();
        let cfg = SimConfig::paper_default();
        let lo = run_load(&net, &cfg, Scheme::TreeWorm, &quick_lc(0.02)).unwrap();
        let hi = run_load(&net, &cfg, Scheme::TreeWorm, &quick_lc(0.4)).unwrap();
        assert!(
            hi.mean_latency.unwrap() > lo.mean_latency.unwrap(),
            "lo={lo:?} hi={hi:?}"
        );
    }

    #[test]
    fn rate_formula() {
        let lc = LoadConfig::paper_default(8, 0.4);
        let r = lc.msgs_per_cycle_per_node();
        assert!((r - 0.4 / (8.0 * 128.0)).abs() < 1e-12);
    }
}
