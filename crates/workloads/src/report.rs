//! Text/CSV rendering of experiment results in the shape of the paper's
//! figures: one series per scheme, x values down the rows.

use irrnet_core::SchemeId;
use std::fmt::Write as _;

/// A figure-shaped result: named x-axis, one series per scheme.
#[derive(Debug, Clone)]
pub struct Series {
    /// x-axis label (e.g. "destinations", "effective applied load").
    pub x_label: String,
    /// y-axis label (e.g. "latency (cycles)").
    pub y_label: String,
    /// x values, in row order.
    pub xs: Vec<f64>,
    /// (scheme, y values aligned with `xs`; `None` = saturated/no data).
    pub series: Vec<(SchemeId, Vec<Option<f64>>)>,
}

impl Series {
    /// New empty series container.
    pub fn new(x_label: &str, y_label: &str, xs: Vec<f64>) -> Self {
        Series { x_label: x_label.into(), y_label: y_label.into(), xs, series: Vec::new() }
    }

    /// Add one scheme's column of y values.
    pub fn push(&mut self, scheme: impl Into<SchemeId>, ys: Vec<Option<f64>>) {
        assert_eq!(ys.len(), self.xs.len(), "series length mismatch");
        self.series.push((scheme.into(), ys));
    }

    /// Aligned human-readable table.
    pub fn to_table(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {title}");
        let _ = write!(out, "{:>12}", self.x_label);
        for (s, _) in &self.series {
            let _ = write!(out, " {:>12}", s.name());
        }
        let _ = writeln!(out);
        for (i, x) in self.xs.iter().enumerate() {
            let _ = write!(out, "{x:>12.4}");
            for (_, ys) in &self.series {
                match ys[i] {
                    Some(y) => {
                        let _ = write!(out, " {y:>12.1}");
                    }
                    None => {
                        let _ = write!(out, " {:>12}", "sat");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// CSV with a header row (`x,scheme1,scheme2,...`); saturated points
    /// are empty cells.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label.replace(' ', "_"));
        for (s, _) in &self.series {
            let _ = write!(out, ",{}", s.name());
        }
        let _ = writeln!(out);
        for (i, x) in self.xs.iter().enumerate() {
            let _ = write!(out, "{x}");
            for (_, ys) in &self.series {
                match ys[i] {
                    Some(y) => {
                        let _ = write!(out, ",{y:.2}");
                    }
                    None => out.push(','),
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// For each x row, which scheme wins (lowest y)?
    pub fn winners(&self) -> Vec<Option<SchemeId>> {
        (0..self.xs.len())
            .map(|i| {
                self.series
                    .iter()
                    .filter_map(|(s, ys)| ys[i].map(|y| (*s, y)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .map(|(s, _)| s)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irrnet_core::Scheme;

    fn sample() -> Series {
        let mut s = Series::new("destinations", "latency", vec![4.0, 8.0]);
        s.push(Scheme::TreeWorm, vec![Some(100.0), Some(150.0)]);
        s.push(Scheme::NiFpfs, vec![Some(200.0), None]);
        s
    }

    #[test]
    fn table_contains_all_cells() {
        let t = sample().to_table("Fig X");
        assert!(t.contains("Fig X"));
        assert!(t.contains("tree"));
        assert!(t.contains("ni-fpfs"));
        assert!(t.contains("150.0"));
        assert!(t.contains("sat"));
    }

    #[test]
    fn csv_round_trip_shape() {
        let c = sample().to_csv();
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "destinations,tree,ni-fpfs");
        assert!(lines[2].ends_with(','), "saturated cell empty: {}", lines[2]);
    }

    #[test]
    fn winners_ignore_saturated() {
        let w = sample().winners();
        assert_eq!(w, vec![Some(Scheme::TreeWorm.id()), Some(Scheme::TreeWorm.id())]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_panics() {
        let mut s = Series::new("x", "y", vec![1.0]);
        s.push(Scheme::TreeWorm, vec![Some(1.0), Some(2.0)]);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use irrnet_core::Scheme;

    #[test]
    fn winners_handle_fully_saturated_rows() {
        let mut s = Series::new("x", "y", vec![1.0]);
        s.push(Scheme::TreeWorm, vec![None]);
        s.push(Scheme::NiFpfs, vec![None]);
        assert_eq!(s.winners(), vec![None]);
    }

    #[test]
    fn empty_series_renders() {
        let s = Series::new("x", "y", Vec::new());
        assert!(s.to_table("t").contains("# t"));
        assert_eq!(s.to_csv().lines().count(), 1);
    }
}
