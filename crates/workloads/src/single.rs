//! Single-multicast latency experiments (§4.2).
//!
//! "We assume that exactly one multicast occurs in the system at any given
//! time and that there is no other network traffic. This gives us an
//! estimate of the best possible performance of each of the three schemes
//! in isolation."

use irrnet_core::rng::SmallRng;
use irrnet_core::{plan_multicast, PlanMeta, SchemeId, SchemeProtocol};
use irrnet_sim::{McastId, SimConfig, SimError, Simulator};
use irrnet_topology::{Network, NodeId, NodeMask};
use std::sync::Arc;

/// Result of one single-multicast run.
#[derive(Debug, Clone, Copy)]
pub struct SingleResult {
    /// Multicast latency in cycles (launch → last host delivery).
    pub latency: u64,
    /// Structural plan facts (worms, phases, k).
    pub meta: PlanMeta,
    /// Cycles the engine actually iterated (event jumps excluded) — the
    /// work metric reported by `irrnet-run bench`.
    pub cycles_run: u64,
}

/// Run one multicast on an idle network and return its latency.
pub fn run_single(
    net: &Network,
    cfg: &SimConfig,
    scheme: impl Into<SchemeId>,
    source: NodeId,
    dests: NodeMask,
    message_flits: u32,
) -> Result<SingleResult, SimError> {
    let plan = plan_multicast(net, cfg, scheme, source, dests.clone(), message_flits);
    let meta = plan.meta;
    let mut proto = SchemeProtocol::new();
    proto.add(McastId(0), Arc::new(plan));
    let mut sim = Simulator::new(net, cfg.clone(), proto)?;
    sim.schedule_multicast(0, McastId(0), dests, message_flits);
    sim.run_to_completion(500_000_000)?;
    let stats = sim.stats();
    let latency = stats
        .latency_of(McastId(0))
        .expect("run_to_completion guarantees completion");
    Ok(SingleResult { latency, meta, cycles_run: stats.cycles_run })
}

/// Draw a random (source, destination set) pair of the given degree.
pub fn random_mcast(rng: &mut SmallRng, num_nodes: usize, degree: usize) -> (NodeId, NodeMask) {
    assert!(degree < num_nodes, "degree must leave room for a source");
    let source = NodeId(rng.gen_range(0..num_nodes) as u16);
    (source, random_dests(rng, num_nodes, degree, source))
}

/// Draw a uniform random destination set of `degree` nodes, excluding
/// `source`.
pub fn random_dests(
    rng: &mut SmallRng,
    num_nodes: usize,
    degree: usize,
    source: NodeId,
) -> NodeMask {
    assert!(degree < num_nodes, "degree must leave room for a source");
    let mut dests = NodeMask::EMPTY;
    while dests.len() < degree {
        let d = NodeId(rng.gen_range(0..num_nodes) as u16);
        if d != source {
            dests.insert(d);
        }
    }
    dests
}

/// Averaged single-multicast latency over several random (source, dests)
/// trials on one network.
pub fn mean_single_latency(
    net: &Network,
    cfg: &SimConfig,
    scheme: impl Into<SchemeId>,
    degree: usize,
    message_flits: u32,
    trials: usize,
    seed: u64,
) -> Result<f64, SimError> {
    let scheme = scheme.into();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sum = 0u64;
    for _ in 0..trials {
        let (source, dests) = random_mcast(&mut rng, net.topo.num_nodes(), degree);
        sum += run_single(net, cfg, scheme, source, dests, message_flits)?.latency;
    }
    Ok(sum as f64 / trials as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use irrnet_core::Scheme;
    use irrnet_topology::zoo;

    #[test]
    fn run_single_reports_meta() {
        let net = Network::analyze(zoo::paper_example().unwrap()).unwrap();
        let cfg = SimConfig::paper_default();
        let dests = NodeMask::from_nodes((1..=4).map(NodeId));
        let r = run_single(&net, &cfg, Scheme::TreeWorm, NodeId(0), dests, 128).unwrap();
        assert!(r.latency > 0);
        assert_eq!(r.meta.worms, 1);
    }

    #[test]
    fn random_mcast_is_well_formed() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let (s, d) = random_mcast(&mut rng, 32, 8);
            assert_eq!(d.len(), 8);
            assert!(!d.contains(s));
        }
    }

    #[test]
    fn mean_is_deterministic_per_seed() {
        let net = Network::analyze(zoo::paper_example().unwrap()).unwrap();
        let cfg = SimConfig::paper_default();
        let a = mean_single_latency(&net, &cfg, Scheme::NiFpfs, 6, 128, 3, 42).unwrap();
        let b = mean_single_latency(&net, &cfg, Scheme::NiFpfs, 6, 128, 3, 42).unwrap();
        assert_eq!(a, b);
    }
}
