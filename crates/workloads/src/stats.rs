//! Small, dependency-free summary statistics for experiment outputs:
//! means, standard deviations, and quantiles of latency samples.

/// Summary of a sample of latencies (or any nonnegative metric).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Returns `None` for an empty sample.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = samples.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
        let n = v.len();
        let mean = v.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        };
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: v[0],
            p50: quantile(&v, 0.50),
            p95: quantile(&v, 0.95),
            p99: quantile(&v, 0.99),
            max: v[n - 1],
        })
    }

    /// Coefficient of variation (σ/µ); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Linear-interpolation quantile of a **sorted** sample, `q ∈ [0, 1]`.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "q out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[42.0]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.p50, 42.0);
        assert_eq!(s.p99, 42.0);
    }

    #[test]
    fn known_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        // Sample std dev of 1..5 = sqrt(2.5).
        assert!((s.std_dev - 2.5f64.sqrt()).abs() < 1e-12);
        assert!((s.cv() - 2.5f64.sqrt() / 3.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&v, 0.0), 10.0);
        assert_eq!(quantile(&v, 1.0), 40.0);
        assert_eq!(quantile(&v, 0.5), 25.0);
        assert!((quantile(&v, 0.25) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn order_independent() {
        let a = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        let b = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "q out of range")]
    fn bad_quantile_panics() {
        quantile(&[1.0], 1.5);
    }
}
