//! Small, dependency-free summary statistics for experiment outputs:
//! means, standard deviations, and quantiles of latency samples.
//!
//! Two families live here:
//!
//! * the exact path — [`Summary::of`] buffers every sample, sorts, and
//!   interpolates quantiles; this is what the paper-fidelity goldens are
//!   pinned against, and it stays the default;
//! * the streaming path — [`OnlineStats`] (Welford mean/variance) and
//!   [`GkSketch`] (a Greenwald–Khanna ε-approximate quantile sketch),
//!   combined by [`StreamingSummary`] — which holds O((1/ε)·log(εn))
//!   memory instead of O(n), so million-sample load runs stay bounded.
//!   The sketch is fully deterministic: the same insertion sequence
//!   always yields the same tuples and the same quantile answers, and
//!   every returned quantile is an *inserted value* whose rank is within
//!   ⌈εn⌉ of the requested rank.

/// Summary of a sample of latencies (or any nonnegative metric).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Returns `None` for an empty sample.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = samples.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
        let n = v.len();
        let mean = v.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        };
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: v[0],
            p50: quantile(&v, 0.50),
            p95: quantile(&v, 0.95),
            p99: quantile(&v, 0.99),
            max: v[n - 1],
        })
    }

    /// Coefficient of variation (σ/µ); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Linear-interpolation quantile of a **sorted** sample, `q ∈ [0, 1]`.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "q out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

// ---- streaming statistics -------------------------------------------------

/// Default rank-error bound ε for streaming quantile sketches: a
/// reported quantile's rank is within ⌈εn⌉ = n/1000 of the exact rank.
pub const STREAM_EPS: f64 = 0.001;

/// Online mean/variance/extrema over a stream of samples, in O(1)
/// memory (Welford's algorithm). Deterministic for a fixed insertion
/// order; two accumulators can be [`merge`](OnlineStats::merge)d
/// (Chan et al. pairwise update), so per-shard statistics combine
/// without re-reading samples.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one sample in.
    pub fn push(&mut self, x: f64) {
        debug_assert!(!x.is_nan(), "NaN sample");
        if self.n == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Fold another accumulator in, as if its samples had been pushed
    /// here (parallel/pairwise variance update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.n += other.n;
    }

    /// Samples seen.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Running mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n−1 denominator; 0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 for an empty accumulator).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 for an empty accumulator).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// One Greenwald–Khanna tuple: `v` covers `g` ranks ending at
/// rmin(i) = Σ g_j (j ≤ i), with rank uncertainty `delta`.
#[derive(Debug, Clone, Copy)]
struct GkTuple {
    v: f64,
    g: u64,
    delta: u64,
}

/// Deterministic ε-approximate quantile sketch (Greenwald–Khanna 2001).
///
/// Invariant: for every tuple, `g + delta ≤ ⌊2εn⌋ + 1`, which bounds the
/// rank uncertainty of any answer by ⌈εn⌉. Memory is
/// O((1/ε)·log(εn)) tuples — for ε = 0.001 and a million samples, a few
/// thousand tuples instead of a million buffered floats. Everything
/// (insertion position, compression, query) is a pure function of the
/// insertion sequence, so identically-fed sketches answer identically.
#[derive(Debug, Clone)]
pub struct GkSketch {
    eps: f64,
    n: u64,
    tuples: Vec<GkTuple>,
    since_compress: u64,
}

impl GkSketch {
    /// Empty sketch with rank-error bound `eps` (0 < eps < 1).
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
        GkSketch { eps, n: 0, tuples: Vec::new(), since_compress: 0 }
    }

    /// Samples seen.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Tuples currently held (the memory footprint).
    pub fn tuples(&self) -> usize {
        self.tuples.len()
    }

    /// The configured rank-error bound.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Fold one sample in.
    pub fn push(&mut self, v: f64) {
        debug_assert!(!v.is_nan(), "NaN sample");
        // First tuple at or above v; ties insert before the run of equal
        // values — a fixed, order-independent-of-nothing rule that keeps
        // the sketch deterministic.
        let idx = self.tuples.partition_point(|t| t.v < v);
        let delta = if idx == 0 || idx == self.tuples.len() {
            0 // new minimum or maximum: rank exactly known
        } else {
            (2.0 * self.eps * self.n as f64).floor() as u64
        };
        self.tuples.insert(idx, GkTuple { v, g: 1, delta });
        self.n += 1;
        self.since_compress += 1;
        if self.since_compress as f64 >= 1.0 / (2.0 * self.eps) {
            self.compress();
            self.since_compress = 0;
        }
    }

    /// Merge adjacent tuples whose combined uncertainty stays within the
    /// invariant, scanning from the tail so freshly inserted tuples fold
    /// into their successors first. The first and last tuples (exact min
    /// and max) are never removed.
    fn compress(&mut self) {
        let cap = (2.0 * self.eps * self.n as f64).floor() as u64;
        let mut i = self.tuples.len().wrapping_sub(2);
        while i >= 1 && i < self.tuples.len() - 1 {
            let merged = self.tuples[i].g + self.tuples[i + 1].g + self.tuples[i + 1].delta;
            if merged <= cap {
                self.tuples[i + 1].g += self.tuples[i].g;
                self.tuples.remove(i);
            }
            i = i.wrapping_sub(1);
        }
    }

    /// The ε-approximate `q`-quantile (`q ∈ [0, 1]`): an inserted value
    /// whose rank is within ⌈εn⌉ of ⌈q·n⌉. `None` on an empty sketch.
    /// `q = 0` and `q = 1` return the exact minimum and maximum.
    pub fn query(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "q out of range");
        if self.n == 0 {
            return None;
        }
        // The first and last tuples are never compressed away, so the
        // endpoints are the exact extrema.
        if q == 0.0 {
            return Some(self.tuples[0].v);
        }
        if q == 1.0 {
            return Some(self.tuples[self.tuples.len() - 1].v);
        }
        let rank = ((q * self.n as f64).ceil() as u64).max(1);
        let margin = (self.eps * self.n as f64).ceil() as u64;
        // Return the first tuple whose whole rank range fits within the
        // margin; fall back to the least-bad tuple (ties keep the first,
        // so the answer is deterministic).
        let mut rmin = 0u64;
        let mut best: Option<(u64, f64)> = None;
        for t in &self.tuples {
            rmin += t.g;
            let rmax = rmin + t.delta;
            let err = rank.saturating_sub(rmin).max(rmax.saturating_sub(rank));
            if err <= margin {
                return Some(t.v);
            }
            if best.map(|(e, _)| err < e).unwrap_or(true) {
                best = Some((err, t.v));
            }
        }
        best.map(|(_, v)| v)
    }
}

/// Bounded-memory replacement for buffering samples and calling
/// [`Summary::of`]: exact n/mean/σ/min/max via [`OnlineStats`], plus
/// ε-approximate p50/p95/p99 from one shared [`GkSketch`].
#[derive(Debug, Clone)]
pub struct StreamingSummary {
    stats: OnlineStats,
    sketch: GkSketch,
}

impl StreamingSummary {
    /// Empty accumulator with rank-error bound `eps`.
    pub fn new(eps: f64) -> Self {
        StreamingSummary { stats: OnlineStats::new(), sketch: GkSketch::new(eps) }
    }

    /// Empty accumulator at the default [`STREAM_EPS`] bound.
    pub fn default_eps() -> Self {
        Self::new(STREAM_EPS)
    }

    /// Fold one sample in.
    pub fn push(&mut self, x: f64) {
        self.stats.push(x);
        self.sketch.push(x);
    }

    /// Samples seen.
    pub fn n(&self) -> u64 {
        self.stats.n()
    }

    /// Render as a [`Summary`]. Mean/σ/min/max are exact (same
    /// recurrence, not the buffered sum — documented as the streaming
    /// path); p50/p95/p99 carry the sketch's ⌈εn⌉ rank-error bound.
    /// `None` when no sample was pushed.
    pub fn summary(&self) -> Option<Summary> {
        if self.stats.n() == 0 {
            return None;
        }
        Some(Summary {
            n: self.stats.n() as usize,
            mean: self.stats.mean(),
            std_dev: self.stats.std_dev(),
            min: self.stats.min(),
            p50: self.sketch.query(0.50).expect("non-empty sketch"),
            p95: self.sketch.query(0.95).expect("non-empty sketch"),
            p99: self.sketch.query(0.99).expect("non-empty sketch"),
            max: self.stats.max(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[42.0]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.p50, 42.0);
        assert_eq!(s.p99, 42.0);
    }

    #[test]
    fn known_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        // Sample std dev of 1..5 = sqrt(2.5).
        assert!((s.std_dev - 2.5f64.sqrt()).abs() < 1e-12);
        assert!((s.cv() - 2.5f64.sqrt() / 3.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&v, 0.0), 10.0);
        assert_eq!(quantile(&v, 1.0), 40.0);
        assert_eq!(quantile(&v, 0.5), 25.0);
        assert!((quantile(&v, 0.25) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn order_independent() {
        let a = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        let b = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "q out of range")]
    fn bad_quantile_panics() {
        quantile(&[1.0], 1.5);
    }

    // ---- streaming path --------------------------------------------------

    #[test]
    fn online_stats_match_exact_summary() {
        let samples: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let exact = Summary::of(&samples).unwrap();
        let mut o = OnlineStats::new();
        for &x in &samples {
            o.push(x);
        }
        assert_eq!(o.n() as usize, exact.n);
        assert!((o.mean() - exact.mean).abs() < 1e-9);
        assert!((o.std_dev() - exact.std_dev).abs() < 1e-9);
        assert_eq!(o.min(), exact.min);
        assert_eq!(o.max(), exact.max);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 100.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let (a_half, b_half) = xs.split_at(123);
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in a_half {
            a.push(x);
        }
        for &x in b_half {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.n(), whole.n());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-6);
        assert_eq!((a.min(), a.max()), (whole.min(), whole.max()));
        // Merging into an empty accumulator copies.
        let mut e = OnlineStats::new();
        e.merge(&whole);
        assert_eq!(e.n(), whole.n());
        assert_eq!(e.mean(), whole.mean());
    }

    /// Exact rank range of `v` in `sorted`: [#smaller + 1, #not-larger].
    fn rank_range(sorted: &[f64], v: f64) -> (u64, u64) {
        let below = sorted.partition_point(|&x| x < v) as u64;
        let not_above = sorted.partition_point(|&x| x <= v) as u64;
        (below + 1, not_above)
    }

    #[test]
    fn gk_sketch_respects_rank_error_bound() {
        // Several seeded distributions via the in-tree PRNG; the sketch's
        // guarantee must hold on every one of them.
        use irrnet_core::rng::SmallRng;
        let eps = 0.01;
        for seed in [1u64, 2, 3] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let dists: Vec<(&str, Vec<f64>)> = vec![
                ("uniform", (0..20_000).map(|_| rng.gen_range(0.0..1000.0)).collect()),
                (
                    "exponential-ish",
                    (0..20_000)
                        .map(|_| -rng.gen_range(f64::EPSILON..1.0).ln() * 250.0)
                        .collect(),
                ),
                ("sorted", (0..20_000).map(|i| i as f64).collect()),
                ("reversed", (0..20_000).rev().map(|i| i as f64).collect()),
                ("constant", vec![42.0; 20_000]),
            ];
            for (name, xs) in dists {
                let mut sk = GkSketch::new(eps);
                for &x in &xs {
                    sk.push(x);
                }
                let mut sorted = xs.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let n = xs.len() as f64;
                let margin = (eps * n).ceil() as u64;
                for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
                    let est = sk.query(q).unwrap();
                    let target = ((q * n).ceil() as u64).max(1);
                    let (lo, hi) = rank_range(&sorted, est);
                    assert!(
                        lo <= target + margin && hi + margin >= target,
                        "{name} seed {seed}: q={q} est={est} rank∈[{lo},{hi}] \
                         target={target} margin={margin}"
                    );
                }
                assert_eq!(sk.query(0.0), Some(sorted[0]), "{name}: exact min");
                assert_eq!(sk.query(1.0), Some(sorted[sorted.len() - 1]), "{name}: exact max");
            }
        }
    }

    #[test]
    fn gk_sketch_is_bounded_memory_and_deterministic() {
        use irrnet_core::rng::SmallRng;
        let mut rng = SmallRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..200_000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let feed = |xs: &[f64]| {
            let mut sk = GkSketch::new(STREAM_EPS);
            for &x in xs {
                sk.push(x);
            }
            sk
        };
        let a = feed(&xs);
        let b = feed(&xs);
        // Deterministic: identically-fed sketches answer identically.
        for q in [0.01, 0.5, 0.9, 0.99] {
            assert_eq!(a.query(q), b.query(q));
        }
        assert_eq!(a.tuples(), b.tuples());
        // Bounded: a sketch over 200k samples holds a few thousand
        // tuples, not 200k floats (O((1/ε)·log(εn))).
        assert!(
            a.tuples() < 20_000,
            "sketch holds {} tuples for 200k samples",
            a.tuples()
        );
    }

    #[test]
    fn streaming_summary_tracks_exact_summary() {
        use irrnet_core::rng::SmallRng;
        let mut rng = SmallRng::seed_from_u64(11);
        let xs: Vec<f64> = (0..50_000).map(|_| rng.gen_range(0.0..10_000.0)).collect();
        let exact = Summary::of(&xs).unwrap();
        let mut s = StreamingSummary::default_eps();
        for &x in &xs {
            s.push(x);
        }
        let got = s.summary().unwrap();
        assert_eq!(got.n, exact.n);
        assert!((got.mean - exact.mean).abs() / exact.mean < 1e-9);
        assert!((got.std_dev - exact.std_dev).abs() / exact.std_dev < 1e-6);
        assert_eq!((got.min, got.max), (exact.min, exact.max));
        // Quantiles within the ε rank bound translate to small value
        // error on a smooth distribution.
        for (got_q, exact_q) in [(got.p50, exact.p50), (got.p95, exact.p95), (got.p99, exact.p99)]
        {
            assert!(
                (got_q - exact_q).abs() < 100.0,
                "sketch quantile {got_q} vs exact {exact_q}"
            );
        }
        assert!(StreamingSummary::default_eps().summary().is_none());
    }
}
