//! Parameter sweeps over (scheme × parameter × topology) grids, run in
//! parallel across OS threads.
//!
//! Each simulation is single-threaded and deterministic; the grid points
//! are independent, so a simple shared-index work queue over scoped
//! threads gives linear speedup without any extra dependencies.

use irrnet_core::Scheme;
use irrnet_sim::SimConfig;
use irrnet_topology::{gen, Network, RandomTopologyConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `f` over `tasks` on up to `available_parallelism` worker threads,
/// returning results in task order.
pub fn par_run<T, R, F>(tasks: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = tasks.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&tasks[i]);
                *results[i].lock().unwrap() = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// Build the analyzed networks for a batch of topology seeds.
pub fn build_networks(base: &RandomTopologyConfig, seeds: &[u64]) -> Vec<Network> {
    seeds
        .iter()
        .map(|&s| {
            let mut cfg = base.clone();
            cfg.seed = s;
            Network::analyze(gen::generate(&cfg).expect("feasible topology config"))
                .expect("generated topology analyzes")
        })
        .collect()
}

/// The topology seeds the experiments average over (DESIGN.md: 10 random
/// topologies, seeds 0..10).
pub fn default_seeds() -> Vec<u64> {
    (0..10).collect()
}

/// One grid point of a single-multicast sweep.
#[derive(Debug, Clone)]
pub struct SinglePoint {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Multicast degree (x-axis of Figs. 6–8).
    pub degree: usize,
    /// Message length in flits.
    pub message_flits: u32,
    /// Simulator configuration (carries R, overheads, packet size).
    pub sim: SimConfig,
}

/// Averaged result for one grid point.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Multicast degree.
    pub degree: usize,
    /// Mean latency in cycles across topologies × trials.
    pub mean_latency: f64,
}

/// Run a single-multicast sweep: for every point, average
/// `trials_per_topo` random multicasts on every network.
pub fn single_sweep(
    nets: &[Network],
    points: &[SinglePoint],
    trials_per_topo: usize,
    seed: u64,
) -> Vec<SweepRow> {
    let tasks: Vec<(usize, &SinglePoint)> = points.iter().enumerate().collect();
    par_run(&tasks, |(pi, p)| {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (ti, net) in nets.iter().enumerate() {
            let s = crate::single::mean_single_latency(
                net,
                &p.sim,
                p.scheme,
                p.degree,
                p.message_flits,
                trials_per_topo,
                seed ^ ((*pi as u64) << 32) ^ (ti as u64),
            )
            .expect("single multicast completes");
            sum += s;
            count += 1;
        }
        SweepRow { scheme: p.scheme, degree: p.degree, mean_latency: sum / count as f64 }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_run_preserves_order() {
        let tasks: Vec<usize> = (0..100).collect();
        let out = par_run(&tasks, |&t| t * 2);
        assert_eq!(out, (0..100).map(|t| t * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_run_empty() {
        let tasks: Vec<usize> = Vec::new();
        assert!(par_run(&tasks, |&t| t).is_empty());
    }

    #[test]
    fn networks_build_for_default_seeds() {
        let nets = build_networks(&RandomTopologyConfig::paper_default(0), &[0, 1, 2]);
        assert_eq!(nets.len(), 3);
    }

    #[test]
    fn small_sweep_produces_sane_rows() {
        let nets = build_networks(&RandomTopologyConfig::paper_default(0), &[0, 1]);
        let points = vec![
            SinglePoint {
                scheme: Scheme::TreeWorm,
                degree: 4,
                message_flits: 128,
                sim: SimConfig::paper_default(),
            },
            SinglePoint {
                scheme: Scheme::TreeWorm,
                degree: 16,
                message_flits: 128,
                sim: SimConfig::paper_default(),
            },
        ];
        let rows = single_sweep(&nets, &points, 2, 99);
        assert_eq!(rows.len(), 2);
        // More destinations can only slow a single multicast down.
        assert!(rows[1].mean_latency >= rows[0].mean_latency);
    }
}
