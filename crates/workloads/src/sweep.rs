//! Parameter sweeps over (scheme × parameter × topology) grids, run in
//! parallel across OS threads.
//!
//! Each simulation is single-threaded and deterministic; the grid points
//! are independent, so a simple shared-index work queue over scoped
//! threads gives linear speedup without any extra dependencies. Results
//! are identical whatever the worker count: per-point RNG streams are
//! derived by hashing `(seed, point, topology)` — never from scheduling
//! order.

use irrnet_core::rng;
use irrnet_core::SchemeId;
use irrnet_sim::SimConfig;
use irrnet_topology::{gen, Network, RandomTopologyConfig};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `f` over `tasks` on up to `available_parallelism` worker threads,
/// returning results in task order.
pub fn par_run<T, R, F>(tasks: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_run_with(tasks, None, f)
}

/// [`par_run`] with an explicit worker count (`None` = one per core).
///
/// Workers pull indices from a shared atomic queue and accumulate
/// `(index, result)` pairs in a thread-local buffer — one allocation per
/// worker instead of the per-slot `Mutex<Option<R>>` this used to take —
/// and the buffers are stitched back into task order after the scope
/// joins.
pub fn par_run_with<T, R, F>(tasks: &[T], workers: Option<usize>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers
        .filter(|&w| w > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        })
        .min(n);
    if workers == 1 {
        return tasks.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut buf: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        buf.push((i, f(&tasks[i])));
                    }
                    buf
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(buf) => {
                    for (i, r) in buf {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("workers cover every index"))
        .collect()
}

/// Build the analyzed networks for a batch of topology seeds.
pub fn build_networks(base: &RandomTopologyConfig, seeds: &[u64]) -> Vec<Network> {
    seeds
        .iter()
        .map(|&s| {
            let mut cfg = base.clone();
            cfg.seed = s;
            Network::analyze(gen::generate(&cfg).expect("feasible topology config"))
                .expect("generated topology analyzes")
        })
        .collect()
}

/// The topology seeds the experiments average over (DESIGN.md: 10 random
/// topologies, seeds 0..10).
pub fn default_seeds() -> Vec<u64> {
    (0..10).collect()
}

/// One grid point of a single-multicast sweep.
#[derive(Debug, Clone)]
pub struct SinglePoint {
    /// Scheme under test.
    pub scheme: SchemeId,
    /// Multicast degree (x-axis of Figs. 6–8).
    pub degree: usize,
    /// Message length in flits.
    pub message_flits: u32,
    /// Simulator configuration (carries R, overheads, packet size).
    pub sim: SimConfig,
}

/// Averaged result for one grid point.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Scheme under test.
    pub scheme: SchemeId,
    /// Multicast degree.
    pub degree: usize,
    /// Mean latency in cycles across topologies × trials.
    pub mean_latency: f64,
}

/// The RNG stream seed for grid point `pi` on topology `ti` of a sweep
/// with base seed `seed`: a splitmix64 hash of the triple. (The previous
/// `seed ^ (pi << 32) ^ ti` xor-mixing made streams for consecutive
/// indices trivially correlated and collided across panels.)
#[inline]
pub fn point_seed(seed: u64, pi: usize, ti: usize) -> u64 {
    rng::hash3(seed, pi as u64, ti as u64)
}

fn eval_point(nets: &[&Network], p: &SinglePoint, pi: usize, trials: usize, seed: u64) -> SweepRow {
    let mut sum = 0.0;
    let mut count = 0usize;
    for (ti, net) in nets.iter().enumerate() {
        let s = crate::single::mean_single_latency(
            net,
            &p.sim,
            p.scheme,
            p.degree,
            p.message_flits,
            trials,
            point_seed(seed, pi, ti),
        )
        .expect("single multicast completes");
        sum += s;
        count += 1;
    }
    SweepRow { scheme: p.scheme, degree: p.degree, mean_latency: sum / count as f64 }
}

/// Run a single-multicast sweep: for every point, average
/// `trials_per_topo` random multicasts on every network.
pub fn single_sweep(
    nets: &[Network],
    points: &[SinglePoint],
    trials_per_topo: usize,
    seed: u64,
) -> Vec<SweepRow> {
    let refs: Vec<&Network> = nets.iter().collect();
    let tasks: Vec<(usize, &SinglePoint)> = points.iter().enumerate().collect();
    par_run(&tasks, |(pi, p)| eval_point(&refs, p, *pi, trials_per_topo, seed))
}

/// Serial [`single_sweep`] over borrowed networks — the form the
/// experiment harness uses, where parallelism lives one level up (the
/// cross-experiment unit pool) and the networks come out of a shared
/// cache. Produces bit-identical rows to [`single_sweep`].
pub fn single_sweep_serial(
    nets: &[&Network],
    points: &[SinglePoint],
    trials_per_topo: usize,
    seed: u64,
) -> Vec<SweepRow> {
    points
        .iter()
        .enumerate()
        .map(|(pi, p)| eval_point(nets, p, pi, trials_per_topo, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use irrnet_core::Scheme;

    #[test]
    fn par_run_preserves_order() {
        let tasks: Vec<usize> = (0..100).collect();
        let out = par_run(&tasks, |&t| t * 2);
        assert_eq!(out, (0..100).map(|t| t * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_run_empty() {
        let tasks: Vec<usize> = Vec::new();
        assert!(par_run(&tasks, |&t| t).is_empty());
    }

    #[test]
    fn par_run_with_any_worker_count_matches_serial() {
        let tasks: Vec<usize> = (0..57).collect();
        let expect: Vec<usize> = tasks.iter().map(|&t| t * t + 1).collect();
        for workers in [Some(1), Some(2), Some(3), Some(16), None] {
            assert_eq!(par_run_with(&tasks, workers, |&t| t * t + 1), expect, "{workers:?}");
        }
    }

    #[test]
    fn point_seeds_are_collision_free_on_small_grids() {
        let mut seen = std::collections::HashSet::new();
        for pi in 0..32 {
            for ti in 0..16 {
                assert!(seen.insert(point_seed(0xBEEF, pi, ti)));
            }
        }
    }

    #[test]
    fn networks_build_for_default_seeds() {
        let nets = build_networks(&RandomTopologyConfig::paper_default(0), &[0, 1, 2]);
        assert_eq!(nets.len(), 3);
    }

    #[test]
    fn small_sweep_produces_sane_rows() {
        let nets = build_networks(&RandomTopologyConfig::paper_default(0), &[0, 1]);
        let points = vec![
            SinglePoint {
                scheme: Scheme::TreeWorm.id(),
                degree: 4,
                message_flits: 128,
                sim: SimConfig::paper_default(),
            },
            SinglePoint {
                scheme: Scheme::TreeWorm.id(),
                degree: 16,
                message_flits: 128,
                sim: SimConfig::paper_default(),
            },
        ];
        let rows = single_sweep(&nets, &points, 2, 99);
        assert_eq!(rows.len(), 2);
        // More destinations can only slow a single multicast down.
        assert!(rows[1].mean_latency >= rows[0].mean_latency);

        // The serial harness path is bit-identical to the pooled one.
        let refs: Vec<&Network> = nets.iter().collect();
        let serial = single_sweep_serial(&refs, &points, 2, 99);
        for (a, b) in rows.iter().zip(&serial) {
            assert_eq!(a.mean_latency, b.mean_latency);
        }
    }
}
