//! Multicast under transient soft errors: seeded per-link corruption and
//! drop, with switch-side link-level retry and/or NI-side end-to-end
//! retransmission as the competing recovery mechanisms.
//!
//! Where [`crate::faults`] kills components *permanently* and asks the
//! routing layer to reconfigure, this workload keeps the topology intact
//! and damages individual flits in flight — the regime real irregular
//! fabrics mostly live in. The paper's NI-vs-switch question then
//! reappears as a reliability question: is it better to catch a damaged
//! flit one hop downstream and replay it from the switch (link-level
//! retry), or to let the worm die and have the source NI re-send on a
//! delivery timeout (end-to-end recovery)? Every run is a pure function
//! of its seeds, and a zero-rate error model is byte-identical to a
//! healthy run.

use irrnet_core::rng::SmallRng;
use irrnet_core::{plan_multicast, SchemeId, SchemeProtocol};
use irrnet_sim::{Cycle, LinkRetryPolicy, McastId, RetxPolicy, SimConfig, SimError, Simulator};
use irrnet_topology::{ErrorModel, Network};
use std::sync::Arc;

/// Parameters of one transient-fault run.
#[derive(Debug, Clone)]
pub struct TransientConfig {
    /// Multicast degree (destinations per multicast).
    pub degree: usize,
    /// Message length in flits.
    pub message_flits: u32,
    /// Number of multicasts, launched periodically.
    pub mcasts: usize,
    /// Launch spacing in cycles.
    pub interval: Cycle,
    /// Hard stop for the run (must cover launches + recovery tail).
    pub horizon: Cycle,
    /// Watchdog recovery budget (stuck worms sacrificed before aborting).
    pub recovery_limit: u32,
    /// Workload RNG seed (sources / destination sets).
    pub seed: u64,
    /// Per-flit corruption probability in parts per billion.
    pub corrupt_ppb: u32,
    /// Per-flit drop probability in parts per billion.
    pub drop_ppb: u32,
    /// Error-model RNG seed (which (link, cycle) draws are damaged).
    pub error_seed: u64,
    /// Enable switch-side link-level retry.
    pub link_retry: bool,
    /// Enable NI delivery timeouts + end-to-end retransmission.
    pub retx: bool,
}

impl TransientConfig {
    /// Defaults for the `ext_i_reliability` sweep at a given error rate
    /// (split evenly between corruption and drops) and mechanism pair.
    pub fn paper_default(error_ppb: u32, link_retry: bool, retx: bool) -> Self {
        TransientConfig {
            degree: 8,
            message_flits: 128,
            mcasts: 24,
            interval: 4_000,
            horizon: 3_000_000,
            recovery_limit: 8,
            seed: 0xF00D,
            corrupt_ppb: error_ppb / 2,
            drop_ppb: error_ppb - error_ppb / 2,
            error_seed: 0x0E44_0E44,
            link_retry,
            retx,
        }
    }

    /// The per-link error model this configuration injects. Exposed so a
    /// campaign can fingerprint the model it ran under (e.g. for
    /// `irrnet-run status` shard labels) without re-deriving the
    /// corrupt/drop split.
    pub fn error_model(&self) -> ErrorModel {
        ErrorModel::uniform(self.corrupt_ppb, self.drop_ppb, self.error_seed)
    }
}

/// Outcome of one transient-fault run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientResult {
    /// Delivered (multicast, destination) pairs over expected ones; 1.0
    /// when nothing was lost.
    pub delivery_ratio: f64,
    /// Mean latency of the multicasts that completed (`None` if none).
    pub mean_latency: Option<f64>,
    /// Multicasts launched.
    pub launched: usize,
    /// Multicasts fully delivered.
    pub completed: usize,
    /// Flits damaged (but transmitted) on a link.
    pub flits_corrupted: u64,
    /// Flits lost outright on a link.
    pub flits_dropped_transient: u64,
    /// Link-level replays performed by switch outputs.
    pub link_retries: u64,
    /// Worms killed after a link exhausted its retry budget.
    pub retry_exhaustions: u64,
    /// Destinations whose first delivery came from an NI retransmission.
    pub e2e_recoveries: u64,
    /// Packets re-sent by source NIs on delivery timeout.
    pub retransmissions: u64,
    /// Deliveries suppressed as duplicates.
    pub duplicate_deliveries: u64,
    /// Worm copies truncated or discarded.
    pub worms_killed: u64,
    /// Useful transmissions over all transmissions (1.0 = no damage).
    pub goodput: f64,
    /// Cycles the engine actually iterated.
    pub cycles_run: u64,
}

/// Run one transient-fault experiment.
///
/// Plans are computed on the (always healthy) network; damage strikes
/// individual flits mid-flight per the seeded [`ErrorModel`], and the
/// enabled recovery mechanisms — link-level retry at the switch,
/// end-to-end retransmission at the NI, both, or neither — determine how
/// much of the traffic still arrives.
pub fn run_transient(
    net: &Network,
    cfg: &SimConfig,
    scheme: impl Into<SchemeId>,
    tc: &TransientConfig,
) -> Result<TransientResult, SimError> {
    let scheme = scheme.into();
    let n = net.topo.num_nodes();
    let mut rng = SmallRng::seed_from_u64(tc.seed);
    let mut proto = SchemeProtocol::new();
    let mut launches = Vec::with_capacity(tc.mcasts);
    for i in 0..tc.mcasts {
        let (source, dests) = crate::single::random_mcast(&mut rng, n, tc.degree);
        let id = McastId(i as u64);
        let plan = plan_multicast(net, cfg, scheme, source, dests.clone(), tc.message_flits);
        proto.add(id, Arc::new(plan));
        launches.push((i as Cycle * tc.interval, id, dests));
    }

    let mut run_cfg = cfg.clone();
    run_cfg.watchdog_recovery_limit = tc.recovery_limit;
    let mut sim = Simulator::new(net, run_cfg, proto)?;
    for (t, id, dests) in launches {
        sim.schedule_multicast(t, id, dests, tc.message_flits);
    }

    sim.install_errors(&tc.error_model());
    if tc.link_retry {
        sim.enable_link_retry(LinkRetryPolicy::default_for(cfg));
    }
    if tc.retx {
        sim.enable_retransmission(RetxPolicy::default_for(cfg));
    }

    sim.run_until(tc.horizon)?;

    let stats = sim.stats();
    let mut samples = Vec::new();
    let mut completed = 0usize;
    for r in stats.mcasts.values() {
        if r.completed.is_some() {
            completed += 1;
        }
        if let Some(l) = r.latency() {
            samples.push(l as f64);
        }
    }
    let mean_latency = if samples.is_empty() {
        None
    } else {
        Some(samples.iter().sum::<f64>() / samples.len() as f64)
    };
    Ok(TransientResult {
        delivery_ratio: stats.delivery_ratio(),
        mean_latency,
        launched: stats.mcasts.len(),
        completed,
        flits_corrupted: stats.net.flits_corrupted,
        flits_dropped_transient: stats.net.flits_dropped_transient,
        link_retries: stats.net.link_retries,
        retry_exhaustions: stats.net.retry_exhaustions,
        e2e_recoveries: stats.net.e2e_recoveries,
        retransmissions: stats.net.retransmissions,
        duplicate_deliveries: stats.net.duplicate_deliveries,
        worms_killed: stats.net.worms_killed,
        goodput: stats.goodput_ratio(),
        cycles_run: stats.cycles_run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use irrnet_core::Scheme;
    use irrnet_topology::zoo;

    fn quick(error_ppb: u32, link_retry: bool, retx: bool) -> TransientConfig {
        TransientConfig {
            mcasts: 12,
            interval: 3_000,
            horizon: 2_000_000,
            ..TransientConfig::paper_default(error_ppb, link_retry, retx)
        }
    }

    #[test]
    fn zero_rate_is_lossless_and_error_free() {
        let net = Network::analyze(zoo::paper_example().unwrap()).unwrap();
        let cfg = SimConfig::paper_default();
        // Recovery mechanisms armed but never triggered: a zero-rate
        // model must leave them (and the run) completely inert.
        let r = run_transient(&net, &cfg, Scheme::TreeWorm, &quick(0, true, true)).unwrap();
        assert_eq!(r.delivery_ratio, 1.0, "{r:?}");
        assert_eq!(r.completed, r.launched);
        assert_eq!(r.flits_corrupted, 0);
        assert_eq!(r.flits_dropped_transient, 0);
        assert_eq!(r.link_retries, 0);
        assert_eq!(r.retry_exhaustions, 0);
        assert_eq!(r.e2e_recoveries, 0);
        assert_eq!(r.retransmissions, 0);
        assert_eq!(r.worms_killed, 0);
        assert_eq!(r.goodput, 1.0);
    }

    #[test]
    fn transient_runs_are_deterministic_per_seed() {
        let net = Network::analyze(zoo::paper_example().unwrap()).unwrap();
        let cfg = SimConfig::paper_default();
        for (lr, retx) in [(false, false), (true, false), (false, true), (true, true)] {
            let a = run_transient(&net, &cfg, Scheme::UBinomial, &quick(2_000_000, lr, retx));
            let b = run_transient(&net, &cfg, Scheme::UBinomial, &quick(2_000_000, lr, retx));
            assert_eq!(a.unwrap(), b.unwrap(), "link_retry={lr} retx={retx}");
        }
    }

    #[test]
    fn damage_without_recovery_loses_deliveries() {
        let net = Network::analyze(zoo::paper_example().unwrap()).unwrap();
        let cfg = SimConfig::paper_default();
        let r = run_transient(&net, &cfg, Scheme::TreeWorm, &quick(5_000_000, false, false))
            .unwrap();
        let damaged = r.flits_corrupted + r.flits_dropped_transient;
        assert!(damaged > 0, "{r:?}");
        assert!(r.worms_killed > 0, "{r:?}");
        assert!(r.delivery_ratio < 1.0, "{r:?}");
        assert!(r.goodput < 1.0, "{r:?}");
    }

    #[test]
    fn link_retry_masks_moderate_rates_completely() {
        let net = Network::analyze(zoo::paper_example().unwrap()).unwrap();
        let cfg = SimConfig::paper_default();
        // At 0.2% per flit with an 8-deep retry budget, the chance of a
        // budget-exhausting failure streak is negligible: every worm must
        // arrive, purely via link-level replays.
        let r = run_transient(&net, &cfg, Scheme::UBinomial, &quick(2_000_000, true, false))
            .unwrap();
        assert!(r.link_retries > 0, "{r:?}");
        assert_eq!(r.retry_exhaustions, 0, "{r:?}");
        assert_eq!(r.delivery_ratio, 1.0, "{r:?}");
        assert_eq!(r.completed, r.launched);
    }

    #[test]
    fn e2e_retransmission_recovers_what_the_network_loses() {
        let net = Network::analyze(zoo::paper_example().unwrap()).unwrap();
        let cfg = SimConfig::paper_default();
        let with = run_transient(&net, &cfg, Scheme::UBinomial, &quick(5_000_000, false, true))
            .unwrap();
        let without =
            run_transient(&net, &cfg, Scheme::UBinomial, &quick(5_000_000, false, false))
                .unwrap();
        assert!(
            with.delivery_ratio >= without.delivery_ratio,
            "with={with:?} without={without:?}"
        );
        assert!(with.e2e_recoveries > 0, "{with:?}");
        assert!(with.retransmissions > 0, "{with:?}");
    }

    #[test]
    fn extreme_rates_escalate_past_the_retry_budget() {
        let net = Network::analyze(zoo::paper_example().unwrap()).unwrap();
        let cfg = SimConfig::paper_default();
        // 60% per flit: failure streaks longer than the retry budget are
        // routine, so the escalation ladder's last rung — kill the worm,
        // let the NI re-send — must fire (and the run must stay clean:
        // the CI audit leg runs this test under IRRNET_AUDIT=1).
        let mut tc = quick(600_000_000, true, true);
        tc.mcasts = 4;
        tc.horizon = 1_000_000;
        let r = run_transient(&net, &cfg, Scheme::UBinomial, &tc).unwrap();
        assert!(r.retry_exhaustions > 0, "{r:?}");
        assert!(r.link_retries > 0, "{r:?}");
        assert!(r.worms_killed > 0, "{r:?}");
    }
}
