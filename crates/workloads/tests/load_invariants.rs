//! Invariants of the load harness: accounting consistency, monotonicity
//! in the offered load, and distribution sanity.

use irrnet_core::Scheme;
use irrnet_sim::SimConfig;
use irrnet_topology::{gen, Network, RandomTopologyConfig};
use irrnet_workloads::{run_load, LoadConfig};

fn net() -> Network {
    Network::analyze(gen::generate(&RandomTopologyConfig::paper_default(2)).unwrap()).unwrap()
}

fn lc(load: f64) -> LoadConfig {
    LoadConfig {
        degree: 6,
        message_flits: 128,
        effective_load: load,
        warmup: 20_000,
        measure: 120_000,
        drain: 80_000,
        seed: 99,
        stream_stats: false,
    }
}

#[test]
fn accounting_is_consistent() {
    let net = net();
    let cfg = SimConfig::paper_default();
    let r = run_load(&net, &cfg, Scheme::TreeWorm, &lc(0.05)).unwrap();
    assert!(r.completed <= r.launched);
    assert!(r.launched > 0);
    let s = r.latency.expect("some completions");
    assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    if let Some(m) = r.mean_latency {
        // `mean_latency` (window mean) and the Summary mean agree: both
        // cover the same sample set.
        assert!((m - s.mean).abs() < 1e-6, "{m} vs {}", s.mean);
    }
}

#[test]
fn launched_count_scales_with_load() {
    let net = net();
    let cfg = SimConfig::paper_default();
    let a = run_load(&net, &cfg, Scheme::TreeWorm, &lc(0.02)).unwrap();
    let b = run_load(&net, &cfg, Scheme::TreeWorm, &lc(0.08)).unwrap();
    // 4x the offered load ⇒ roughly 4x the generated multicasts.
    let ratio = b.launched as f64 / a.launched.max(1) as f64;
    assert!((2.5..6.0).contains(&ratio), "ratio {ratio:.2}");
}

#[test]
fn same_seed_same_result() {
    let net = net();
    let cfg = SimConfig::paper_default();
    let a = run_load(&net, &cfg, Scheme::PathLessGreedy, &lc(0.05)).unwrap();
    let b = run_load(&net, &cfg, Scheme::PathLessGreedy, &lc(0.05)).unwrap();
    assert_eq!(a.launched, b.launched);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.mean_latency, b.mean_latency);
}

#[test]
fn degree_one_load_is_plain_unicast_traffic() {
    let net = net();
    let cfg = SimConfig::paper_default();
    let mut c = lc(0.02);
    c.degree = 1;
    let r = run_load(&net, &cfg, Scheme::UBinomial, &c).unwrap();
    assert!(!r.saturated);
    // A lone unicast at these parameters is ~2.3k cycles; light load must
    // be in that ballpark.
    let m = r.mean_latency.unwrap();
    assert!((2_000.0..6_000.0).contains(&m), "mean {m}");
}
