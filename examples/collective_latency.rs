//! Collective-communication scenario from the paper's introduction:
//! multicast as the building block of barrier synchronization and DSM
//! cache invalidation. Compares how each scheme's *broadcast* latency
//! scales with system size, and derives a barrier estimate
//! (broadcast + gather ≈ 2× multicast under symmetric overheads).
//!
//! Run with: `cargo run --release --example collective_latency`

use irrnet::prelude::*;
use irrnet::topology::ExtraLinks;

fn main() {
    let cfg = SimConfig::paper_default();
    println!("broadcast latency vs. system size (cycles), R = 1, 1-packet messages\n");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "nodes", "switches", "ubinomial", "ni-fpfs", "tree", "path-lg"
    );
    for (nodes, switches) in [(16usize, 4usize), (32, 8), (48, 12), (64, 16)] {
        let topo_cfg = RandomTopologyConfig {
            num_switches: switches,
            ports_per_switch: 8,
            num_hosts: nodes,
            extra_links: ExtraLinks::Fraction(0.75),
            seed: 7,
        };
        let net = Network::analyze(gen::generate(&topo_cfg).unwrap()).unwrap();
        let source = NodeId(0);
        let mut dests = NodeMask::all(nodes);
        dests.remove(source);
        print!("{nodes:>8} {switches:>10}");
        for scheme in [
            Scheme::UBinomial,
            Scheme::NiFpfs,
            Scheme::TreeWorm,
            Scheme::PathLessGreedy,
        ] {
            let r = run_single(&net, &cfg, scheme, source, dests.clone(), 128).unwrap();
            print!(" {:>12}", r.latency);
        }
        println!();
    }

    println!();
    println!("barrier synchronization (software combining reduce + release broadcast,");
    println!("release implemented by each scheme):");
    let net = Network::analyze(gen::generate(&RandomTopologyConfig::paper_default(7)).unwrap())
        .unwrap();
    let members = NodeMask::all(32);
    for scheme in Scheme::all() {
        let r = run_collective(
            &net,
            &cfg,
            CollectiveOp::Barrier,
            NodeId(0),
            members.clone(),
            scheme,
            4,
            8,
        )
        .unwrap();
        println!(
            "  {:>10}: {} cycles ({} µs), {} messages",
            scheme.name(),
            r.latency,
            r.latency / 100,
            r.messages
        );
    }
    println!();
    println!("allreduce of a 128-flit vector:");
    for scheme in [Scheme::UBinomial, Scheme::NiFpfs, Scheme::TreeWorm, Scheme::PathLessGreedy] {
        let r = run_collective(
            &net,
            &cfg,
            CollectiveOp::AllReduce,
            NodeId(0),
            members.clone(),
            scheme,
            4,
            128,
        )
        .unwrap();
        println!("  {:>10}: {} cycles ({} µs)", scheme.name(), r.latency, r.latency / 100);
    }
}
