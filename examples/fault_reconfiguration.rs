//! Fault & reconfiguration scenario: the paper motivates irregular
//! topologies by their resilience ("resistant to faults", "amenable to
//! network reconfigurations", §1). This example fails each redundant
//! link of a network in turn, recomputes the whole Autonet pipeline
//! (BFS tree, up/down orientation, routing tables, reachability
//! strings), and measures how multicast latency degrades per scheme.
//!
//! Run with: `cargo run --release --example fault_reconfiguration`

use irrnet::prelude::*;
use irrnet::topology::metrics::{link_is_redundant, network_metrics, remove_link};
use irrnet::topology::LinkId;

fn main() {
    let topo = gen::generate(&RandomTopologyConfig::paper_default(9)).unwrap();
    let net = Network::analyze(topo.clone()).unwrap();
    let cfg = SimConfig::paper_default();
    let m = network_metrics(&net);
    println!(
        "healthy network: {} links, diameter {}, mean distance {:.2}\n",
        m.links, m.diameter, m.mean_distance
    );

    let dests = NodeMask::from_nodes((1..=16).map(NodeId));
    let baseline: Vec<(Scheme, u64)> = Scheme::paper_three()
        .into_iter()
        .map(|s| (s, run_single(&net, &cfg, s, NodeId(0), dests.clone(), 128).unwrap().latency))
        .collect();
    print!("{:>10} {:>10}", "failed", "diameter");
    for (s, _) in &baseline {
        print!(" {:>12}", s.name());
    }
    println!();
    print!("{:>10} {:>10}", "-", m.diameter);
    for (_, l) in &baseline {
        print!(" {l:>12}");
    }
    println!("   (healthy)");

    let mut bridges = 0;
    for li in 0..topo.num_links() {
        let link = LinkId(li as u32);
        if !link_is_redundant(&topo, link) {
            bridges += 1;
            continue;
        }
        let degraded = remove_link(&topo, link).unwrap();
        let dnet = Network::analyze(degraded).unwrap();
        let dm = network_metrics(&dnet);
        print!("{:>10} {:>10}", format!("{link}"), dm.diameter);
        for (scheme, _) in &baseline {
            let lat = run_single(&dnet, &cfg, *scheme, NodeId(0), dests.clone(), 128)
                .unwrap()
                .latency;
            print!(" {lat:>12}");
        }
        println!();
    }
    println!(
        "\n{bridges} of {} links are bridges (their loss would partition the network\n\
         and trigger a full Autonet reconfiguration rather than rerouting).",
        topo.num_links()
    );
    println!("every surviving configuration still delivers all multicasts — the");
    println!("up*/down* pipeline is recomputed from scratch per configuration.");
}
