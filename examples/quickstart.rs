//! Quickstart: one multicast under every scheme on the paper's default
//! system, printing latency and plan structure.
//!
//! Run with: `cargo run --release --example quickstart`

use irrnet::prelude::*;

fn main() {
    // The paper's default system: 32 nodes on eight 8-port switches,
    // irregular connectivity, Autonet-style up*/down* routing.
    let topo = gen::generate(&RandomTopologyConfig::paper_default(42)).expect("valid config");
    let net = Network::analyze(topo).expect("connected network");
    println!(
        "network: {} nodes, {} switches, {} links (root {})",
        net.num_nodes(),
        net.num_switches(),
        net.topo.num_links(),
        net.updown.root(),
    );

    // Default parameters: O_h = O_ni = 500 cycles (R = 1), 128-flit
    // packets, 266 MB/s I/O bus.
    let cfg = SimConfig::paper_default();
    println!(
        "overheads: O_h = {} cycles, O_ni = {} cycles (R = {})",
        cfg.o_send_host,
        cfg.o_send_ni,
        cfg.r_ratio()
    );
    println!();

    // A 16-way multicast from node 0.
    let source = NodeId(0);
    let dests = NodeMask::from_nodes((1..=16).map(NodeId));
    println!("multicast: {source} -> {} destinations, 1 packet (128 flits)", dests.len());
    println!();
    println!(
        "{:>12} {:>12} {:>8} {:>8} {:>6}",
        "scheme", "latency", "worms", "phases", "k"
    );
    for scheme in Scheme::all() {
        let r = run_single(&net, &cfg, scheme, source, dests.clone(), 128).expect("run completes");
        println!(
            "{:>12} {:>12} {:>8} {:>8} {:>6}",
            scheme.name(),
            r.latency,
            r.meta.worms,
            r.meta.phases,
            if r.meta.k == 0 { "-".into() } else { r.meta.k.to_string() }
        );
    }
    println!();
    println!("(cycles; 1 cycle = 10 ns in the paper's reconstruction — divide by 100 for µs)");
}
