//! Saturation study: how much multicast traffic can the system absorb
//! under each scheme? Sweeps the effective applied load for 8-way
//! multicasts and reports latency and the saturation point — the DSM
//! cache-invalidation scenario of the paper's introduction, where
//! invalidation multicasts arrive continuously.
//!
//! Run with: `cargo run --release --example saturation_study`
//! (add `IRRNET_QUICK=1` style brevity by editing LOADS below).

use irrnet::prelude::*;

const LOADS: &[f64] = &[0.02, 0.05, 0.1, 0.2, 0.35];

fn main() {
    let net = Network::analyze(gen::generate(&RandomTopologyConfig::paper_default(3)).unwrap())
        .unwrap();
    let cfg = SimConfig::paper_default();
    println!("8-way multicast latency (cycles) vs. effective applied load, R = 1\n");
    print!("{:>10}", "load");
    for s in Scheme::paper_three() {
        print!(" {:>12}", s.name());
    }
    println!();
    let mut first_sat: Vec<Option<f64>> = vec![None; Scheme::paper_three().len()];
    for &load in LOADS {
        print!("{load:>10.2}");
        for (i, scheme) in Scheme::paper_three().into_iter().enumerate() {
            let mut lc = LoadConfig::paper_default(8, load);
            lc.warmup = 50_000;
            lc.measure = 300_000;
            lc.drain = 150_000;
            let r = run_load(&net, &cfg, scheme, &lc).expect("load run");
            match (r.saturated, r.mean_latency) {
                (false, Some(l)) => print!(" {l:>12.0}"),
                (true, Some(l)) => {
                    print!(" {:>11.0}*", l);
                    first_sat[i].get_or_insert(load);
                }
                _ => {
                    print!(" {:>12}", "sat");
                    first_sat[i].get_or_insert(load);
                }
            }
        }
        println!();
    }
    println!("\n(* = saturated: fewer than 90% of generated multicasts completed)");
    println!("\nfirst saturated load point:");
    for (scheme, sat) in Scheme::paper_three().into_iter().zip(first_sat) {
        match sat {
            Some(l) => println!("  {:>10}: {l}", scheme.name()),
            None => println!("  {:>10}: beyond {}", scheme.name(), LOADS.last().unwrap()),
        }
    }
}
