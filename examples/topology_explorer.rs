//! Topology explorer: generate a random irregular network and inspect
//! the substrate the schemes run on — BFS levels, up/down orientation,
//! routing distances/adaptivity, reachability strings, and a Graphviz
//! dump.
//!
//! Run with: `cargo run --release --example topology_explorer [seed]`

use irrnet::prelude::*;
use irrnet::topology::{dot, Phase};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0u64);
    let topo = gen::generate(&RandomTopologyConfig::paper_default(seed)).unwrap();
    let net = Network::analyze(topo).unwrap();

    println!("seed {seed}: {} switches, {} nodes, {} links", net.num_switches(), net.num_nodes(), net.topo.num_links());
    println!("\nBFS spanning tree (root {}):", net.updown.root());
    for (s, _) in net.topo.switches() {
        let nodes = net.topo.nodes_at(s);
        println!(
            "  {s}: level {}, parent {}, {} hosts {nodes}, cover {} nodes",
            net.updown.level(s),
            net.updown
                .parent(s)
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into()),
            nodes.len(),
            net.reach.cover(s).len(),
        );
    }

    println!("\nrouting facts (phase Up):");
    let n = net.num_switches();
    let mut max_d = 0;
    let mut sum_d = 0u32;
    let mut pairs = 0u32;
    let mut adaptive_pairs = 0u32;
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let (sa, sb) = (SwitchId(a as u16), SwitchId(b as u16));
            let d = net.routing.distance(sa, Phase::Up, sb);
            max_d = max_d.max(d);
            sum_d += d as u32;
            pairs += 1;
            if net.routing.next_hops(sa, Phase::Up, sb).len() > 1 {
                adaptive_pairs += 1;
            }
        }
    }
    println!("  diameter (up*/down* hops): {max_d}");
    println!("  mean distance: {:.2}", sum_d as f64 / pairs as f64);
    println!(
        "  switch pairs with adaptive choice at the first hop: {adaptive_pairs}/{pairs}"
    );

    println!("\nGraphviz (pipe into `dot -Tsvg`):\n");
    print!("{}", dot::to_dot(&net.topo, Some(&net.updown)));
}
