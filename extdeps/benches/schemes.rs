//! Criterion micro/meso-benchmarks of the reproduction's hot paths:
//! per-scheme single-multicast simulation, plan construction, topology
//! analysis, and a short load slice. These guard the simulator's own
//! performance (the figure harnesses run thousands of these simulations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use irrnet_core::{plan_multicast, Scheme, SchemeProtocol};
use irrnet_sim::{McastId, SimConfig, Simulator};
use irrnet_topology::{gen, Network, NodeId, NodeMask, RandomTopologyConfig};
use irrnet_workloads::{run_load, LoadConfig};
use std::sync::Arc;

fn default_net() -> Network {
    Network::analyze(gen::generate(&RandomTopologyConfig::paper_default(0)).unwrap()).unwrap()
}

fn bench_single_multicast(c: &mut Criterion) {
    let net = default_net();
    let cfg = SimConfig::paper_default();
    let dests = NodeMask::from_nodes((1..=16).map(NodeId));
    let mut g = c.benchmark_group("single_multicast_16way");
    for scheme in Scheme::all() {
        g.bench_with_input(BenchmarkId::from_parameter(scheme.name()), &scheme, |b, &scheme| {
            b.iter(|| {
                let plan = plan_multicast(&net, &cfg, scheme, NodeId(0), dests, 128);
                let mut proto = SchemeProtocol::new();
                proto.add(McastId(0), Arc::new(plan));
                let mut sim = Simulator::new(&net, cfg.clone(), proto).unwrap();
                sim.schedule_multicast(0, McastId(0), dests, 128);
                sim.run_to_completion(100_000_000).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_planning(c: &mut Criterion) {
    let net = default_net();
    let cfg = SimConfig::paper_default();
    let dests = NodeMask::from_nodes((1..=16).map(NodeId));
    let mut g = c.benchmark_group("plan_construction_16way");
    for scheme in Scheme::all() {
        g.bench_with_input(BenchmarkId::from_parameter(scheme.name()), &scheme, |b, &scheme| {
            b.iter(|| plan_multicast(&net, &cfg, scheme, NodeId(0), dests, 128))
        });
    }
    g.finish();
}

fn bench_topology_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("network_analysis");
    for switches in [8usize, 32] {
        let topo_cfg = RandomTopologyConfig::with_switches(0, switches);
        g.bench_with_input(
            BenchmarkId::from_parameter(switches),
            &topo_cfg,
            |b, topo_cfg| {
                b.iter(|| {
                    Network::analyze(gen::generate(topo_cfg).unwrap()).unwrap()
                })
            },
        );
    }
    g.finish();
}

fn bench_load_slice(c: &mut Criterion) {
    let net = default_net();
    let cfg = SimConfig::paper_default();
    let mut g = c.benchmark_group("load_slice_100k_cycles");
    g.sample_size(10);
    for scheme in Scheme::paper_three() {
        g.bench_with_input(BenchmarkId::from_parameter(scheme.name()), &scheme, |b, &scheme| {
            let lc = LoadConfig {
                degree: 8,
                message_flits: 128,
                effective_load: 0.05,
                warmup: 10_000,
                measure: 80_000,
                drain: 10_000,
                seed: 1,
            };
            b.iter(|| run_load(&net, &cfg, scheme, &lc).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_single_multicast,
    bench_planning,
    bench_topology_analysis,
    bench_load_slice
);
criterion_main!(benches);
