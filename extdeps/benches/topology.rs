//! Criterion benchmarks of the topology substrate: generation, Autonet
//! analysis pipeline, and the per-multicast planning primitives (apex
//! plans and reachability partitions) that load experiments execute
//! thousands of times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use irrnet_topology::{
    gen, ApexPlan, Network, NodeId, NodeMask, RandomTopologyConfig, UpDown,
};

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology_generation");
    for switches in [8usize, 32] {
        let cfg = RandomTopologyConfig::with_switches(0, switches);
        g.bench_with_input(BenchmarkId::from_parameter(switches), &cfg, |b, cfg| {
            b.iter(|| gen::generate(cfg).unwrap())
        });
    }
    g.finish();
}

fn bench_updown_and_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("autonet_pipeline");
    for switches in [8usize, 32] {
        let topo = gen::generate(&RandomTopologyConfig::with_switches(0, switches)).unwrap();
        g.bench_with_input(
            BenchmarkId::new("updown", switches),
            &topo,
            |b, topo| b.iter(|| UpDown::compute(topo, irrnet_topology::SwitchId(0)).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("full_analysis", switches),
            &topo,
            |b, topo| b.iter(|| Network::analyze(topo.clone()).unwrap()),
        );
    }
    g.finish();
}

fn bench_apex_plan(c: &mut Criterion) {
    let net =
        Network::analyze(gen::generate(&RandomTopologyConfig::paper_default(0)).unwrap()).unwrap();
    let dests = NodeMask::from_nodes((1..=16).map(NodeId));
    c.bench_function("apex_plan_16way", |b| {
        b.iter(|| ApexPlan::compute(&net.topo, &net.updown, &net.reach, dests))
    });
}

fn bench_partition(c: &mut Criterion) {
    let net =
        Network::analyze(gen::generate(&RandomTopologyConfig::paper_default(0)).unwrap()).unwrap();
    let root = net.updown.root();
    let all = NodeMask::all(net.num_nodes());
    c.bench_function("reachability_partition_broadcast", |b| {
        b.iter(|| net.reach.partition(&net.topo, root, all))
    });
}

criterion_group!(
    benches,
    bench_generation,
    bench_updown_and_routing,
    bench_apex_plan,
    bench_partition
);
criterion_main!(benches);
