//! Carrier package for the opt-in proptest suites (`tests/`) and
//! criterion benchmarks (`benches/`). See the manifest for why these
//! live outside the main workspace. No library code.
