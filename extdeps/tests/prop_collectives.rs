//! Property tests: every collective completes on arbitrary member sets,
//! roots, fan-outs, schemes and payload sizes, with the expected message
//! census.

use irrnet_collectives::{run_collective, CollectiveOp};
use irrnet_core::Scheme;
use irrnet_sim::SimConfig;
use irrnet_topology::{gen, Network, NodeId, NodeMask, RandomTopologyConfig};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = CollectiveOp> {
    prop_oneof![
        Just(CollectiveOp::Broadcast),
        Just(CollectiveOp::Reduce),
        Just(CollectiveOp::Barrier),
        Just(CollectiveOp::AllReduce),
    ]
}

fn scheme_strategy() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::UBinomial),
        Just(Scheme::NiFpfs),
        Just(Scheme::TreeWorm),
        Just(Scheme::PathLessGreedy),
        Just(Scheme::PathLgNi),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn collectives_always_complete(
        seed in 0u64..6,
        member_bits in 3u64..u64::MAX,
        root_pick in 0usize..32,
        op in op_strategy(),
        scheme in scheme_strategy(),
        fanout in 1usize..8,
        data in prop_oneof![Just(8u32), Just(128), Just(300)],
    ) {
        let net = Network::analyze(
            gen::generate(&RandomTopologyConfig::paper_default(seed)).unwrap(),
        )
        .unwrap();
        // Carve ≥2 members out of the random bits, then pick the root
        // among them.
        let mut members = NodeMask::EMPTY;
        for i in 0..32 {
            if (member_bits >> i) & 1 == 1 {
                members.insert(NodeId(i as u16));
            }
        }
        while members.len() < 2 {
            members.insert(NodeId((member_bits % 32) as u16));
            members.insert(NodeId(((member_bits >> 8) % 32) as u16));
            members.insert(NodeId(0));
        }
        let member_list: Vec<NodeId> = members.iter().collect();
        let root = member_list[root_pick % member_list.len()];

        let r = run_collective(&net, &SimConfig::paper_default(), op, root, members, scheme, fanout, data)
            .expect("collective completes");
        let others = members.len() - 1;
        match op {
            CollectiveOp::Broadcast => {
                prop_assert_eq!(r.messages, 1);
                prop_assert_eq!(r.edges, 0);
            }
            CollectiveOp::Reduce => {
                prop_assert_eq!(r.edges, others);
                prop_assert_eq!(r.messages, others);
            }
            CollectiveOp::Barrier | CollectiveOp::AllReduce => {
                prop_assert_eq!(r.edges, others);
                prop_assert_eq!(r.messages, others + 1);
            }
        }
        prop_assert!(r.latency > 0);
    }
}
