//! Property test: the analytic unicast model matches the simulator
//! *exactly* on arbitrary random topologies, endpoints, message lengths,
//! and overhead settings — the strongest cross-validation of the engine's
//! timing pipeline.

use irrnet_core::{plan_multicast, LatencyModel, Scheme, SchemeProtocol};
use irrnet_sim::{McastId, SimConfig, Simulator};
use irrnet_topology::{gen, Network, NodeId, NodeMask, RandomTopologyConfig};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unicast_model_matches_simulation_exactly(
        seed in 0u64..10,
        src in 0u16..32,
        dst in 0u16..32,
        msg in prop_oneof![Just(16u32), Just(100), Just(128), Just(129), Just(512), Just(1000)],
        oh in prop_oneof![Just(10u64), Just(125), Just(500), Just(2000)],
        r in prop_oneof![Just(0.5f64), Just(1.0), Just(4.0)],
    ) {
        prop_assume!(src != dst);
        let net = Network::analyze(
            gen::generate(&RandomTopologyConfig::paper_default(seed)).unwrap(),
        )
        .unwrap();
        let mut cfg = SimConfig::paper_default();
        cfg.o_send_host = oh;
        cfg.o_recv_host = oh;
        let cfg = cfg.with_r(r);
        let (src, dst) = (NodeId(src), NodeId(dst));

        let predicted = LatencyModel::new(&net, &cfg).unicast(src, dst, msg);

        let plan = plan_multicast(&net, &cfg, Scheme::UBinomial, src, NodeMask::single(dst), msg);
        let mut proto = SchemeProtocol::new();
        proto.add(McastId(0), Arc::new(plan));
        let mut sim = Simulator::new(&net, cfg, proto).unwrap();
        sim.schedule_multicast(0, McastId(0), NodeMask::single(dst), msg);
        sim.run_to_completion(500_000_000).unwrap();
        let measured = sim.stats().latency_of(McastId(0)).unwrap();

        prop_assert_eq!(
            predicted, measured,
            "seed {} {} -> {} msg {} oh {} r {}", seed, src, dst, msg, oh, r
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every worm any path plan emits satisfies the legality invariant
    /// the simulator depends on (the deadlock-class guard).
    #[test]
    fn all_planned_path_worms_verify(
        seed in 0u64..8,
        switches in prop_oneof![Just(8usize), Just(16), Just(32)],
        src in 0u16..32,
        dest_bits in 1u64..u64::MAX,
        variant_lg in any::<bool>(),
    ) {
        let net = Network::analyze(
            gen::generate(&RandomTopologyConfig::with_switches(seed, switches)).unwrap(),
        )
        .unwrap();
        let source = NodeId(src % 32);
        let mut dests = NodeMask::EMPTY;
        for i in 0..32u16 {
            if i != source.0 && (dest_bits >> (i % 64)) & 1 == 1 {
                dests.insert(NodeId(i));
            }
        }
        if dests.is_empty() {
            dests.insert(NodeId((source.0 + 1) % 32));
        }
        let variant = if variant_lg {
            irrnet_core::PathVariant::LessGreedy
        } else {
            irrnet_core::PathVariant::Greedy
        };
        let plan = irrnet_core::plan_paths(&net, source, dests, variant);
        for (sender, specs) in &plan.assignments {
            let from = net.topo.host_switch(*sender);
            for spec in specs {
                irrnet_core::verify_path_spec(&net, from, spec)
                    .map_err(TestCaseError::fail)?;
            }
        }
    }
}
