//! Cross-crate property tests: on arbitrary feasible topologies, with
//! arbitrary destination sets and message lengths, every scheme delivers
//! the message to every destination exactly once — the fundamental
//! multicast correctness invariant — and the flit accounting balances.

use irrnet::prelude::*;
use irrnet::topology::ExtraLinks;
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct Case {
    topo: RandomTopologyConfig,
    source: usize,
    dest_bits: u64,
    message_flits: u32,
    scheme_idx: usize,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (2usize..=8, 0.0f64..=1.0, any::<u64>()).prop_flat_map(|(switches, extra, seed)| {
        let tree_ports = 2 * (switches - 1);
        let max_hosts = (switches * 8 - tree_ports).min(48);
        (3usize..=max_hosts).prop_flat_map(move |hosts| {
            (
                Just(RandomTopologyConfig {
                    num_switches: switches,
                    ports_per_switch: 8,
                    num_hosts: hosts,
                    extra_links: ExtraLinks::Fraction(extra),
                    seed,
                }),
                0..hosts,
                1u64..u64::MAX,
                prop_oneof![Just(16u32), Just(128), Just(300)],
                0usize..Scheme::all().len(),
            )
                .prop_map(|(topo, source, dest_bits, message_flits, scheme_idx)| Case {
                    topo,
                    source,
                    dest_bits,
                    message_flits,
                    scheme_idx,
                })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exactly_once_delivery(case in case_strategy()) {
        let net = Network::analyze(irrnet::topology::gen::generate(&case.topo).unwrap()).unwrap();
        let n = net.topo.num_nodes();
        let source = NodeId(case.source as u16);
        // Carve a destination set out of the random bits.
        let mut dests = NodeMask::EMPTY;
        for i in 0..n {
            if i != source.idx() && (case.dest_bits >> (i % 64)) & 1 == 1 {
                dests.insert(NodeId(i as u16));
            }
        }
        if dests.is_empty() {
            // Ensure at least one destination.
            let d = (source.idx() + 1) % n;
            dests.insert(NodeId(d as u16));
        }
        let scheme = Scheme::all()[case.scheme_idx];
        let cfg = SimConfig::paper_default();

        let plan = plan_multicast(&net, &cfg, scheme, source, dests, case.message_flits);
        let mut proto = SchemeProtocol::new();
        proto.add(McastId(0), Arc::new(plan));
        let mut sim = Simulator::new(&net, cfg.clone(), proto).unwrap();
        sim.schedule_multicast(0, McastId(0), dests, case.message_flits);
        sim.run_to_completion(200_000_000).expect("completes without deadlock");
        let stats = sim.stats();

        // Exactly-once delivery to exactly the destination set (the
        // engine debug-asserts duplicates and wrong-destination
        // deliveries; here we assert the release-visible outcome).
        let rec = &stats.mcasts[&McastId(0)];
        prop_assert_eq!(rec.deliveries.len(), dests.len());
        for d in dests.iter() {
            prop_assert!(rec.deliveries.contains_key(&d), "missing delivery to {}", d);
        }

        // Flit conservation: everything injected is eventually ejected or
        // replicated; ejected >= injected for multicast (replication adds
        // copies), and the packet count at NIs matches the deliveries
        // times packets (plus FPFS forwarding receptions).
        let pkts = cfg.packets_for(case.message_flits) as u64;
        prop_assert_eq!(stats.net.packets_received, dests.len() as u64 * pkts);
        prop_assert!(stats.net.injected_flits > 0);
    }
}
