//! Property-based tests of the topology substrate: any feasible random
//! configuration yields a valid, connected, deadlock-free-routable
//! network with consistent reachability strings.

use irrnet_topology::{
    gen, ExtraLinks, Network, NodeMask, Phase, RandomTopologyConfig, SwitchId,
};
use proptest::prelude::*;

/// Feasible random topology configurations: ports always fit the
/// spanning tree plus hosts.
fn config_strategy() -> impl Strategy<Value = RandomTopologyConfig> {
    (2usize..=12, 4u8..=8, 0.0f64..=1.5, any::<u64>()).prop_flat_map(
        |(switches, ports, extra, seed)| {
            let tree_ports = 2 * (switches - 1);
            let max_hosts = switches * ports as usize - tree_ports;
            (1usize..=max_hosts.min(64)).prop_map(move |hosts| RandomTopologyConfig {
                num_switches: switches,
                ports_per_switch: ports,
                num_hosts: hosts,
                extra_links: ExtraLinks::Fraction(extra),
                seed,
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_topologies_validate_and_analyze(cfg in config_strategy()) {
        let topo = gen::generate(&cfg).expect("feasible config generates");
        topo.validate().expect("generated topology is structurally valid");
        let net = Network::analyze(topo).expect("generated topology analyzes");
        net.updown.verify_acyclic(&net.topo).expect("up orientation acyclic");
        prop_assert!(net.routing.fully_connected());
    }

    #[test]
    fn next_hops_always_make_progress(cfg in config_strategy()) {
        let net = Network::analyze(gen::generate(&cfg).unwrap()).unwrap();
        let n = net.topo.num_switches();
        for s in 0..n {
            for t in 0..n {
                for phase in [Phase::Up, Phase::Down] {
                    let (s, t) = (SwitchId(s as u16), SwitchId(t as u16));
                    let d = net.routing.distance(s, phase, t);
                    if d == irrnet_topology::routing::UNREACHABLE || d == 0 {
                        continue;
                    }
                    let hops = net.routing.next_hops(s, phase, t);
                    prop_assert!(!hops.is_empty());
                    for h in hops {
                        // Monotone distance decrease = livelock-free.
                        prop_assert_eq!(net.routing.distance(h.next, h.next_phase, t), d - 1);
                        // No up traversal after a down traversal.
                        if phase == Phase::Down {
                            prop_assert_eq!(h.next_phase, Phase::Down);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn root_covers_everything_and_partition_is_exact(cfg in config_strategy()) {
        let net = Network::analyze(gen::generate(&cfg).unwrap()).unwrap();
        let all = NodeMask::all(net.topo.num_nodes());
        let root = net.updown.root();
        prop_assert!(net.reach.covers(root, all));
        let parts = net.reach.partition(&net.topo, root, all);
        let mut union = NodeMask::EMPTY;
        for (_, m) in &parts {
            prop_assert!(union.intersection(*m).is_empty(), "duplicate coverage");
            union = union.union(*m);
        }
        prop_assert_eq!(union, all);
    }

    #[test]
    fn cover_equals_union_of_port_strings(cfg in config_strategy()) {
        let net = Network::analyze(gen::generate(&cfg).unwrap()).unwrap();
        for (s, sw) in net.topo.switches() {
            let mut union = NodeMask::EMPTY;
            for p in 0..sw.num_ports() {
                union = union.union(net.reach.port(s, irrnet_topology::PortIdx(p as u8)));
            }
            prop_assert_eq!(union, net.reach.cover(s));
        }
    }

    #[test]
    fn up_distance_decreases_along_up_ports(cfg in config_strategy()) {
        use irrnet_topology::ApexPlan;
        let net = Network::analyze(gen::generate(&cfg).unwrap()).unwrap();
        let n_nodes = net.topo.num_nodes();
        // Use the full destination set: apex guidance must be finite
        // everywhere (the root covers everything).
        let plan = ApexPlan::compute(&net.topo, &net.updown, &net.reach, NodeMask::all(n_nodes));
        for (s, _) in net.topo.switches() {
            let d = plan.up_distance(s);
            prop_assert!(d != u16::MAX);
            if d > 0 {
                prop_assert!(!plan.up_ports(s).is_empty());
            }
        }
    }
}
