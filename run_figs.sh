#!/bin/bash
# Regenerate every figure/table CSV through the unified harness, then
# regression-gate the output against the committed goldens in
# results/golden/. Exits non-zero if any experiment or gate fails.
#
# Pass-through args go to the campaign run, e.g.:
#   ./run_figs.sh                 # quick campaign + compare
#   IRRNET_FULL=1 ./run_figs.sh   # full paper-scale campaign + compare
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release -p irrnet-harness
RUN=target/release/irrnet-run

if [ "${IRRNET_FULL:-0}" = "1" ]; then
  "$RUN" --all "$@"
else
  "$RUN" --all --quick "$@"
fi
"$RUN" compare
echo ALLDONE
