#!/bin/bash
# Regenerate every figure/table CSV through the unified harness, then
# regression-gate the output against the committed goldens in
# results/golden/. Exits non-zero if any experiment or gate fails.
#
# Pass-through args go to the campaign run, e.g.:
#   ./run_figs.sh                 # quick campaign + compare
#   IRRNET_FULL=1 ./run_figs.sh   # full paper-scale campaign + compare
#   ./run_figs.sh bench           # perf gate vs committed BENCH_sim.json
#   ./run_figs.sh bench --exact   # exact cycles_run/sweeps_run gate
#   ./run_figs.sh shard [N]       # quick campaign as N workers + merge + compare
#   ./run_figs.sh chaos           # damage/heal gauntlet: torn tails, stale
#                                 # leases, corruption, reshard — then compare
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release -p irrnet-harness
RUN=target/release/irrnet-run

# Perf-regression mode: re-measure the bench matrix and fail if any
# workload's cycles/sec drops more than 20% below the committed report.
if [ "${1:-}" = "bench" ]; then
  shift
  # --no-out: measure only; never clobber the committed baseline report
  # that --check gates against.
  exec "$RUN" bench --no-out --check BENCH_sim.json "$@"
fi

# Distributed mode: run the quick campaign as N concurrent shard workers
# into one directory, merge, and gate the merged artifacts against the
# same goldens as a single-process run — they must be byte-identical.
if [ "${1:-}" = "shard" ]; then
  N="${2:-2}"
  OUT=results-shard
  rm -rf "$OUT"
  PIDS=()
  for ((i = 0; i < N; i++)); do
    "$RUN" work "$OUT" --shard "$i/$N" --all --quick & PIDS+=($!)
  done
  for pid in "${PIDS[@]}"; do wait "$pid"; done
  "$RUN" status "$OUT"
  "$RUN" merge "$OUT"
  "$RUN" compare --out "$OUT" --golden results/golden
  echo ALLDONE
  exit 0
fi

# Chaos mode: drive the self-healing path end to end through the real
# CLI — torn journal tails, an abandoned shard behind a stale lease,
# mid-file corruption, straggler re-sharding — and require the final
# merge to pass the same golden gate as an undamaged run.
if [ "${1:-}" = "chaos" ]; then
  OUT=results-chaos
  rm -rf "$OUT"
  mkdir -p "$OUT"

  # An empty campaign directory is one clear error, not a stack trace.
  if ERR=$("$RUN" status "$OUT" 2>&1); then
    echo "chaos: status on an empty dir must fail"; exit 1
  fi
  echo "$ERR" | grep -q "no campaign journals"

  "$RUN" work "$OUT" --shard 1/2 --all --quick
  "$RUN" work "$OUT" --shard 0/2 --all --quick
  J0="$OUT/journal.shard-0-of-2.jsonl"
  J1="$OUT/journal.shard-1-of-2.jsonl"

  # Crash shard 0: drop its last two records, leave a torn fragment, and
  # plant a lease from a worker on another machine that stopped
  # heartbeating an hour ago.
  head -n -2 "$J0" > "$J0.tmp" && mv "$J0.tmp" "$J0"
  printf '%s' '{"sum":"0xdeadbeef00000000","kind":"unit","i' >> "$J0"
  STAMP=$(( $(date +%s%3N) - 3600000 ))
  printf '{"pid":1,"host":"other-machine","beat":1,"units_done":0,"stamp_ms":%s,"completed":false,"argv":["work","out","--shard","0/2"]}\n' \
    "$STAMP" > "$OUT/lease.shard-0-of-2.json"

  "$RUN" status "$OUT" | grep -q "STALLED"

  # Adoption requires the explicit flag...
  if "$RUN" work "$OUT" --shard 0/2 --all --quick >/dev/null 2>&1; then
    echo "chaos: adopting a stalled shard without --take-over must fail"; exit 1
  fi
  ERR=$("$RUN" work "$OUT" --shard 0/2 --all --quick 2>&1) || true
  echo "$ERR" | grep -q -- "--take-over"
  # ...and with it, the takeover resumes past the torn tail and finishes.
  "$RUN" work "$OUT" --shard 0/2 --all --quick --take-over --stale-after 1

  # Corrupt shard 1 (one byte inside line 2's checksum field): merge must
  # refuse and name the damage; the repair is delete + re-run.
  OFF=$(( $(head -n 1 "$J1" | wc -c) + 10 ))
  printf 'Z' | dd of="$J1" bs=1 seek="$OFF" conv=notrunc status=none
  if "$RUN" merge "$OUT" >/dev/null 2>&1; then
    echo "chaos: merging a corrupt journal must fail"; exit 1
  fi
  ERR=$("$RUN" merge "$OUT" 2>&1) || true
  echo "$ERR" | grep -qi "corrupt"
  echo "$ERR" | grep -q "journal.shard-1-of-2.jsonl"
  rm "$J1"
  "$RUN" work "$OUT" --shard 1/2 --all --quick

  # Straggler re-sharding: tear shard 0 once more, re-plan the remainder
  # across three workers, and finish there.
  head -n -1 "$J0" > "$J0.tmp" && mv "$J0.tmp" "$J0"
  "$RUN" reshard "$OUT" --shards 3
  for i in 0 1 2; do
    "$RUN" work "$OUT" --shard "$i/3" --all --quick
  done

  "$RUN" status "$OUT"
  "$RUN" merge "$OUT"
  "$RUN" compare --out "$OUT" --golden results/golden
  echo ALLDONE
  exit 0
fi

if [ "${IRRNET_FULL:-0}" = "1" ]; then
  "$RUN" --all "$@"
else
  "$RUN" --all --quick "$@"
fi
"$RUN" compare
echo ALLDONE
