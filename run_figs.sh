#!/bin/bash
set -x
for b in fig06_r_ratio fig07_switches fig08_msglen tab01_arch_costs ext_a_omitted_sweeps ext_b_unicast_saturation ext_c_switch_size ext_d_dsm_invalidation ext_e_collectives abl_ordering abl_adaptivity abl_mdp_variant abl_hybrid fig09_load_r fig10_load_switches fig11_load_msglen; do
  /root/repo/target/release/$b > /root/repo/results/logs/$b.txt 2>&1
  echo "DONE $b"
done
/root/repo/target/release/check_results > /root/repo/results/logs/check_results.txt 2>&1
echo ALLDONE
