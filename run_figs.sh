#!/bin/bash
# Regenerate every figure/table CSV through the unified harness, then
# regression-gate the output against the committed goldens in
# results/golden/. Exits non-zero if any experiment or gate fails.
#
# Pass-through args go to the campaign run, e.g.:
#   ./run_figs.sh                 # quick campaign + compare
#   IRRNET_FULL=1 ./run_figs.sh   # full paper-scale campaign + compare
#   ./run_figs.sh bench           # perf gate vs committed BENCH_sim.json
#   ./run_figs.sh bench --exact   # exact cycles_run/sweeps_run gate
#   ./run_figs.sh shard [N]       # quick campaign as N workers + merge + compare
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release -p irrnet-harness
RUN=target/release/irrnet-run

# Perf-regression mode: re-measure the bench matrix and fail if any
# workload's cycles/sec drops more than 20% below the committed report.
if [ "${1:-}" = "bench" ]; then
  shift
  # --no-out: measure only; never clobber the committed baseline report
  # that --check gates against.
  exec "$RUN" bench --no-out --check BENCH_sim.json "$@"
fi

# Distributed mode: run the quick campaign as N concurrent shard workers
# into one directory, merge, and gate the merged artifacts against the
# same goldens as a single-process run — they must be byte-identical.
if [ "${1:-}" = "shard" ]; then
  N="${2:-2}"
  OUT=results-shard
  rm -rf "$OUT"
  PIDS=()
  for ((i = 0; i < N; i++)); do
    "$RUN" work "$OUT" --shard "$i/$N" --all --quick & PIDS+=($!)
  done
  for pid in "${PIDS[@]}"; do wait "$pid"; done
  "$RUN" status "$OUT"
  "$RUN" merge "$OUT"
  "$RUN" compare --out "$OUT" --golden results/golden
  echo ALLDONE
  exit 0
fi

if [ "${IRRNET_FULL:-0}" = "1" ]; then
  "$RUN" --all "$@"
else
  "$RUN" --all --quick "$@"
fi
"$RUN" compare
echo ALLDONE
