//! `irrnet` — command-line front end for the reproduction.
//!
//! ```text
//! irrnet single --scheme tree --degree 16 [--msg 128] [--r 1.0]
//!               [--switches 8] [--nodes 32] [--seeds 5] [--trials 3]
//! irrnet load   --scheme path-lg --degree 8 --load 0.1 [--msg 128] [--r 1.0]
//! irrnet topo   [--seed 0] [--switches 8] [--dot]
//! irrnet schemes
//! ```

use irrnet::prelude::*;
use irrnet::topology::{dot, ExtraLinks};
use std::collections::HashMap;
use std::process::ExitCode;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut m = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                m.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                m.insert(name.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            eprintln!("unexpected argument: {}", args[i]);
            i += 1;
        }
    }
    m
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn scheme_by_name(name: &str) -> Option<Scheme> {
    Scheme::all().into_iter().find(|s| s.name() == name)
}

fn topo_config(flags: &HashMap<String, String>, seed: u64) -> RandomTopologyConfig {
    RandomTopologyConfig {
        num_switches: get(flags, "switches", 8usize),
        ports_per_switch: get(flags, "ports", 8u8),
        num_hosts: get(flags, "nodes", 32usize),
        extra_links: ExtraLinks::Fraction(get(flags, "extra-links", 0.75f64)),
        seed,
    }
}

fn sim_config(flags: &HashMap<String, String>) -> SimConfig {
    let mut cfg = SimConfig::paper_default();
    cfg.o_send_host = get(flags, "oh", cfg.o_send_host);
    cfg.o_recv_host = cfg.o_send_host;
    cfg = cfg.with_r(get(flags, "r", 1.0f64));
    cfg.packet_payload_flits = get(flags, "packet", cfg.packet_payload_flits);
    cfg.input_buffer_flits = cfg.packet_payload_flits + 40;
    cfg.adaptive = get(flags, "adaptive", true);
    cfg
}

fn cmd_single(flags: HashMap<String, String>) -> ExitCode {
    let Some(scheme) = flags.get("scheme").and_then(|s| scheme_by_name(s)) else {
        eprintln!("--scheme required; see `irrnet schemes`");
        return ExitCode::FAILURE;
    };
    let degree: usize = get(&flags, "degree", 8);
    let msg: u32 = get(&flags, "msg", 128);
    let seeds: u64 = get(&flags, "seeds", 5);
    let trials: usize = get(&flags, "trials", 3);
    let cfg = sim_config(&flags);
    let mut sum = 0.0;
    for seed in 0..seeds {
        let net = match irrnet::topology::gen::generate(&topo_config(&flags, seed))
            .map_err(|e| e.to_string())
            .and_then(|t| Network::analyze(t).map_err(|e| e.to_string()))
        {
            Ok(n) => n,
            Err(e) => {
                eprintln!("topology error: {e}");
                return ExitCode::FAILURE;
            }
        };
        sum += mean_single_latency(&net, &cfg, scheme, degree, msg, trials, seed).unwrap();
    }
    let mean = sum / seeds as f64;
    println!(
        "{}: mean {degree}-way multicast latency = {mean:.0} cycles ({:.1} µs at 10 ns) \
         over {seeds} topologies × {trials} trials, {msg}-flit messages, R = {}",
        scheme.name(),
        mean / 100.0,
        cfg.r_ratio()
    );
    ExitCode::SUCCESS
}

fn cmd_load(flags: HashMap<String, String>) -> ExitCode {
    let Some(scheme) = flags.get("scheme").and_then(|s| scheme_by_name(s)) else {
        eprintln!("--scheme required; see `irrnet schemes`");
        return ExitCode::FAILURE;
    };
    let degree: usize = get(&flags, "degree", 8);
    let load: f64 = get(&flags, "load", 0.1);
    let cfg = sim_config(&flags);
    let net = Network::analyze(
        irrnet::topology::gen::generate(&topo_config(&flags, get(&flags, "seed", 0))).unwrap(),
    )
    .unwrap();
    let mut lc = LoadConfig::paper_default(degree, load);
    lc.message_flits = get(&flags, "msg", 128);
    let r = run_load(&net, &cfg, scheme, &lc).unwrap();
    println!(
        "{} at effective load {load}: launched {}, completed {}, saturated: {}",
        scheme.name(),
        r.launched,
        r.completed,
        r.saturated
    );
    if let Some(l) = r.mean_latency {
        println!("mean latency {l:.0} cycles ({:.1} µs at 10 ns)", l / 100.0);
    }
    ExitCode::SUCCESS
}

fn cmd_topo(flags: HashMap<String, String>) -> ExitCode {
    let seed = get(&flags, "seed", 0u64);
    let net = Network::analyze(
        irrnet::topology::gen::generate(&topo_config(&flags, seed)).unwrap(),
    )
    .unwrap();
    if flags.contains_key("dot") {
        print!("{}", dot::to_dot(&net.topo, Some(&net.updown)));
    } else {
        println!(
            "seed {seed}: {} switches, {} nodes, {} links, root {}",
            net.num_switches(),
            net.num_nodes(),
            net.topo.num_links(),
            net.updown.root()
        );
        for (s, _) in net.topo.switches() {
            println!(
                "  {s}: level {}, hosts {}, covers {} nodes",
                net.updown.level(s),
                net.topo.nodes_at(s).len(),
                net.reach.cover(s).len()
            );
        }
    }
    ExitCode::SUCCESS
}

fn cmd_metrics(flags: HashMap<String, String>) -> ExitCode {
    use irrnet::topology::metrics::{network_metrics, updown_stretch_fraction};
    let seed = get(&flags, "seed", 0u64);
    let net = Network::analyze(
        irrnet::topology::gen::generate(&topo_config(&flags, seed)).unwrap(),
    )
    .unwrap();
    let m = network_metrics(&net);
    println!("seed {seed}:");
    println!("  switches            {}", m.switches);
    println!("  nodes               {}", m.nodes);
    println!("  links               {}", m.links);
    println!("  diameter            {} legal hops", m.diameter);
    println!("  mean distance       {:.2}", m.mean_distance);
    println!("  adaptive pairs      {:.0}%", m.adaptive_fraction * 100.0);
    println!("  nodes per switch    {:.2}", m.nodes_per_switch);
    println!(
        "  up*/down* stretch   {:.0}% of pairs lose their shortest route",
        updown_stretch_fraction(&net) * 100.0
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("usage: irrnet <single|load|topo|metrics|schemes> [--flags]");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    match cmd.as_str() {
        "single" => cmd_single(flags),
        "load" => cmd_load(flags),
        "topo" => cmd_topo(flags),
        "metrics" => cmd_metrics(flags),
        "schemes" => {
            for s in Scheme::all() {
                println!("{}", s.name());
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command: {other}");
            ExitCode::FAILURE
        }
    }
}
