//! `irrnet` — multicasting in irregular switch-based networks: a full
//! reproduction of Sivaram, Kesavan, Panda & Stunkel, *"Where to Provide
//! Support for Efficient Multicasting in Irregular Networks: Network
//! Interface or Switch?"* (ICPP '98).
//!
//! This facade crate re-exports the four component crates:
//!
//! * [`topology`] — irregular topologies, Autonet up*/down* routing,
//!   reachability strings ([`irrnet_topology`]);
//! * [`sim`] — the cycle-level cut-through network / host / NI simulator
//!   ([`irrnet_sim`]);
//! * [`mcast`] — the multicast schemes: unicast binomial, NI-based FPFS
//!   k-binomial, switch tree-based and path-based multidestination worms
//!   ([`irrnet_core`]);
//! * [`workloads`] — single-multicast and load/saturation experiment
//!   harnesses, plus the DSM-invalidation workload ([`irrnet_workloads`]);
//! * [`collectives`] — broadcast / reduce / barrier / allreduce built on
//!   the multicast schemes ([`irrnet_collectives`]).
//!
//! # Quickstart
//!
//! ```
//! use irrnet::prelude::*;
//!
//! // A 32-node, 8-switch irregular network like the paper's default.
//! let topo = gen::generate(&RandomTopologyConfig::paper_default(42)).unwrap();
//! let net = Network::analyze(topo).unwrap();
//! let cfg = SimConfig::paper_default();
//!
//! // One 8-way multicast under the switch tree-based scheme.
//! let dests = NodeMask::from_nodes((1..=8).map(NodeId));
//! let result = run_single(&net, &cfg, Scheme::TreeWorm, NodeId(0), dests, 128).unwrap();
//! assert!(result.latency > 0);
//! ```

pub use irrnet_collectives as collectives;
pub use irrnet_core as mcast;
pub use irrnet_sim as sim;
pub use irrnet_topology as topology;
pub use irrnet_workloads as workloads;

/// One-stop imports for applications.
pub mod prelude {
    pub use irrnet_core::{
        plan_multicast, try_plan_multicast, McastPlan, MulticastScheme, PathVariant, PlanCtx,
        PlanError, PlanMeta, Scheme, SchemeCaps, SchemeId, SchemeProtocol, SchemeRegistry,
    };
    pub use irrnet_sim::{
        Cycle, DeadlockDiagnostics, McastId, PathStop, PathWormSpec, RetxPolicy, SendSpec,
        SimConfig, SimError, SimStats, Simulator,
    };
    pub use irrnet_topology::{
        gen, zoo, FaultKind, FaultPlan, FaultStatus, Network, NodeId, NodeMask,
        RandomFaultConfig, RandomTopologyConfig, SwitchId,
    };
    pub use irrnet_collectives::{run_collective, CollectiveError, CollectiveOp, CollectiveResult};
    pub use irrnet_workloads::{
        mean_single_latency, run_load, run_single, LoadConfig, LoadResult, Series, SingleResult,
    };
}
