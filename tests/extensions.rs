//! Integration tests of the reproduction's extensions: the NI+switch
//! hybrid, routing-adaptivity ablation, and architectural cost models.

use irrnet::mcast::header::{bitstring_bytes, header_costs, tree_scheme_switch_state_bits};
use irrnet::prelude::*;

fn default_net(seed: u64) -> Network {
    Network::analyze(gen::generate(&RandomTopologyConfig::paper_default(seed)).unwrap()).unwrap()
}

#[test]
fn hybrid_sits_between_path_and_tree() {
    // The §3 prediction: NI + switch support beats switch-only path
    // support; hardware tree multicast remains the bound.
    let cfg = SimConfig::paper_default();
    let mut tree = 0u64;
    let mut hybrid = 0u64;
    let mut path = 0u64;
    let dests = NodeMask::from_nodes((8..24).map(NodeId));
    for seed in 0..5 {
        let net = default_net(seed);
        tree += run_single(&net, &cfg, Scheme::TreeWorm, NodeId(0), dests.clone(), 128)
            .unwrap()
            .latency;
        hybrid += run_single(&net, &cfg, Scheme::PathLgNi, NodeId(0), dests.clone(), 128)
            .unwrap()
            .latency;
        path += run_single(&net, &cfg, Scheme::PathLessGreedy, NodeId(0), dests.clone(), 128)
            .unwrap()
            .latency;
    }
    assert!(tree < hybrid, "tree {tree} < hybrid {hybrid}");
    assert!(hybrid < path, "hybrid {hybrid} < path {path}");
}

#[test]
fn disabling_adaptivity_never_helps_under_load() {
    let net = default_net(0);
    let mut lc = LoadConfig::paper_default(8, 0.08);
    lc.warmup = 20_000;
    lc.measure = 150_000;
    lc.drain = 80_000;
    for scheme in [Scheme::TreeWorm, Scheme::PathLessGreedy] {
        let lat = |adaptive: bool| {
            let mut cfg = SimConfig::paper_default();
            cfg.adaptive = adaptive;
            run_load(&net, &cfg, scheme, &lc).unwrap()
        };
        let on = lat(true);
        let off = lat(false);
        // Deterministic routing may saturate where adaptive doesn't, and
        // must not be meaningfully faster.
        if let (Some(a), Some(d)) = (on.mean_latency, off.mean_latency) {
            assert!(
                d >= a * 0.98,
                "{scheme}: deterministic {d:.0} beat adaptive {a:.0}"
            );
        } else {
            assert!(!on.saturated || off.saturated);
        }
    }
}

#[test]
fn bitstring_header_grows_with_system_but_path_header_does_not() {
    // §3.3: tree-based encoding cost scales with system size; path-based
    // per-stop fields do not.
    assert!(bitstring_bytes(128) > bitstring_bytes(32));
    let cfg = SimConfig::paper_default();
    assert_eq!(cfg.path_header_flits(3), 7); // independent of node count
    assert_eq!(cfg.tree_header_flits(32), 5);
    assert_eq!(cfg.tree_header_flits(128), 17);
}

#[test]
fn switch_state_scales_with_switch_count() {
    let bits8: usize = tree_scheme_switch_state_bits(&default_net(0));
    let net32 = Network::analyze(
        gen::generate(&RandomTopologyConfig::with_switches(0, 32)).unwrap(),
    )
    .unwrap();
    let bits32 = tree_scheme_switch_state_bits(&net32);
    assert!(bits32 > bits8, "{bits32} vs {bits8}");
}

#[test]
fn header_cost_ordering_matches_architecture_section() {
    // For one multicast: tree-based puts the fewest header bytes on the
    // wire (one worm); the software schemes pay per destination.
    let cfg = SimConfig::paper_default();
    let net = default_net(2);
    let dests = NodeMask::from_nodes((1..=16).map(NodeId));
    let cost = |scheme| {
        let plan = irrnet::mcast::plan_multicast(&net, &cfg, scheme, NodeId(0), dests.clone(), 128);
        header_costs(&net, &plan).total_header_bytes
    };
    let tree = cost(Scheme::TreeWorm);
    let path = cost(Scheme::PathLessGreedy);
    let ni = cost(Scheme::NiFpfs);
    let ub = cost(Scheme::UBinomial);
    assert!(tree < path, "tree {tree} < path {path}");
    assert!(path < ni, "path {path} < ni {ni}");
    assert_eq!(ni, ub, "both software trees send one unicast per destination");
}

#[test]
fn cli_scheme_names_resolve() {
    for s in Scheme::all() {
        assert!(Scheme::all().iter().any(|x| x.name() == s.name()));
        assert!(!s.name().is_empty());
    }
}
