//! Facade surface test: the `irrnet::prelude` exposes everything a
//! downstream application needs for the common flows, and the re-exported
//! crate modules stay reachable under their facade names.

use irrnet::prelude::*;

#[test]
fn prelude_covers_the_quickstart_flow() {
    let topo = gen::generate(&RandomTopologyConfig::paper_default(0)).unwrap();
    let net = Network::analyze(topo).unwrap();
    let cfg = SimConfig::paper_default();
    let dests = NodeMask::from_nodes((1..=4).map(NodeId));
    let r = run_single(&net, &cfg, Scheme::TreeWorm, NodeId(0), dests, 128).unwrap();
    assert!(r.latency > 0);
}

#[test]
fn facade_module_paths_resolve() {
    // Types reachable through every facade module alias.
    let _t: irrnet::topology::Topology = irrnet::topology::zoo::chain(2).unwrap();
    let _c: irrnet::sim::SimConfig = irrnet::sim::SimConfig::paper_default();
    let _s: irrnet::mcast::Scheme = irrnet::mcast::Scheme::TreeWorm;
    let _l: irrnet::workloads::LoadConfig = irrnet::workloads::LoadConfig::paper_default(8, 0.1);
    let _o: irrnet::collectives::CollectiveOp = irrnet::collectives::CollectiveOp::Barrier;
}

#[test]
fn prelude_collective_flow() {
    let net = Network::analyze(zoo::paper_example().unwrap()).unwrap();
    let cfg = SimConfig::paper_default();
    let r = run_collective(
        &net,
        &cfg,
        CollectiveOp::Reduce,
        NodeId(0),
        NodeMask::from_nodes((0..8).map(NodeId)),
        Scheme::TreeWorm,
        4,
        64,
    )
    .unwrap();
    assert_eq!(r.edges, 7);
}

#[test]
fn scheme_names_round_trip_through_the_cli_convention() {
    // The CLI looks schemes up by name; every name must be unique.
    let names: Vec<&str> = Scheme::all().iter().map(|s| s.name()).collect();
    let mut dedup = names.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), names.len());
}
