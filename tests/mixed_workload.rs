//! One simulation carrying *different schemes concurrently* — the
//! SchemeProtocol dispatches per multicast id, so a workload can mix
//! hardware tree worms, path worms, and NI-based trees in the same
//! network at the same time.

use irrnet::prelude::*;
use std::sync::Arc;

#[test]
fn mixed_schemes_share_one_network() {
    let net = Network::analyze(
        gen::generate(&RandomTopologyConfig::paper_default(4)).unwrap(),
    )
    .unwrap();
    let cfg = SimConfig::paper_default();
    let mut proto = SchemeProtocol::new();
    let mut expected = Vec::new();
    let schemes = Scheme::all();
    for (i, scheme) in schemes.into_iter().enumerate() {
        let source = NodeId((i * 5) as u16);
        let mut dests = NodeMask::from_nodes((0..8).map(|k| NodeId(((i * 3 + k * 4) % 32) as u16)));
        dests.remove(source);
        let id = McastId(i as u64);
        let plan = plan_multicast(&net, &cfg, scheme, source, dests.clone(), 128);
        proto.add(id, Arc::new(plan));
        expected.push((id, dests));
    }
    let mut sim = Simulator::new(&net, cfg, proto).unwrap();
    for (i, (id, dests)) in expected.iter().enumerate() {
        // Staggered launches so traffic overlaps.
        sim.schedule_multicast((i as u64) * 400, *id, dests.clone(), 128);
    }
    sim.run_to_completion(50_000_000).unwrap();
    let stats = sim.stats();
    assert!(stats.all_complete());
    for (id, dests) in expected {
        assert_eq!(stats.mcasts[&id].deliveries.len(), dests.len(), "{id:?}");
    }
}

#[test]
fn mixed_workload_is_deterministic() {
    let run = || {
        let net = Network::analyze(
            gen::generate(&RandomTopologyConfig::paper_default(4)).unwrap(),
        )
        .unwrap();
        let cfg = SimConfig::paper_default();
        let mut proto = SchemeProtocol::new();
        let mut launches = Vec::new();
        for (i, scheme) in [Scheme::TreeWorm, Scheme::NiFpfs, Scheme::PathLessGreedy]
            .into_iter()
            .enumerate()
        {
            let source = NodeId(i as u16);
            let mut dests = NodeMask::from_nodes((10..20).map(NodeId));
            dests.remove(source);
            let id = McastId(i as u64);
            proto.add(id, Arc::new(plan_multicast(&net, &cfg, scheme, source, dests.clone(), 256)));
            launches.push((id, dests));
        }
        let mut sim = Simulator::new(&net, cfg, proto).unwrap();
        for (id, dests) in &launches {
            sim.schedule_multicast(100, *id, dests.clone(), 256);
        }
        sim.run_to_completion(50_000_000).unwrap();
        let st = sim.stats();
        launches
            .iter()
            .map(|(id, _)| st.latency_of(*id).unwrap())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn overlapping_multicasts_slow_each_other_down() {
    let net = Network::analyze(
        gen::generate(&RandomTopologyConfig::paper_default(1)).unwrap(),
    )
    .unwrap();
    let cfg = SimConfig::paper_default();
    let dests = NodeMask::from_nodes((16..28).map(NodeId));
    // Alone:
    let solo = {
        let mut proto = SchemeProtocol::new();
        proto.add(
            McastId(0),
            Arc::new(plan_multicast(&net, &cfg, Scheme::NiFpfs, NodeId(0), dests.clone(), 512)),
        );
        let mut sim = Simulator::new(&net, cfg.clone(), proto).unwrap();
        sim.schedule_multicast(0, McastId(0), dests.clone(), 512);
        sim.run_to_completion(50_000_000).unwrap();
        sim.stats().latency_of(McastId(0)).unwrap()
    };
    // With three identical competitors launched simultaneously from
    // different sources:
    let contended = {
        let mut proto = SchemeProtocol::new();
        for i in 0..4u64 {
            let src = NodeId(i as u16);
            let mut d = dests.clone();
            d.remove(src);
            proto.add(
                McastId(i),
                Arc::new(plan_multicast(&net, &cfg, Scheme::NiFpfs, src, d, 512)),
            );
        }
        let mut sim = Simulator::new(&net, cfg.clone(), proto).unwrap();
        for i in 0..4u64 {
            let src = NodeId(i as u16);
            let mut d = dests.clone();
            d.remove(src);
            sim.schedule_multicast(0, McastId(i), d, 512);
        }
        sim.run_to_completion(50_000_000).unwrap();
        sim.stats().latency_of(McastId(0)).unwrap()
    };
    assert!(
        contended > solo,
        "contention must cost something: {contended} vs {solo}"
    );
}
