//! Integration tests pinning the paper's stated findings (§4–§5) on the
//! reproduction's default parameters. Each test names the claim it
//! checks. All quantities are averaged over several random topologies to
//! smooth topology noise, exactly as the paper averages its figures.

use irrnet::prelude::*;

fn nets(count: usize, switches: usize) -> Vec<Network> {
    (0..count as u64)
        .map(|seed| {
            Network::analyze(
                gen::generate(&RandomTopologyConfig::with_switches(seed, switches)).unwrap(),
            )
            .unwrap()
        })
        .collect()
}

fn avg_latency(
    nets: &[Network],
    cfg: &SimConfig,
    scheme: Scheme,
    degree: usize,
    msg: u32,
) -> f64 {
    let mut sum = 0.0;
    for (i, net) in nets.iter().enumerate() {
        sum += mean_single_latency(net, cfg, scheme, degree, msg, 3, 1000 + i as u64).unwrap();
    }
    sum / nets.len() as f64
}

/// §5: "we find that the tree-based multicasting scheme performs better
/// than the path-based and NI-based schemes" — across R values, degrees
/// and message lengths.
#[test]
fn claim_tree_based_wins_everywhere() {
    let nets = nets(4, 8);
    for r in [0.5, 1.0, 4.0] {
        let cfg = SimConfig::paper_default().with_r(r);
        for degree in [4usize, 16] {
            let tree = avg_latency(&nets, &cfg, Scheme::TreeWorm, degree, 128);
            for other in [Scheme::NiFpfs, Scheme::PathLessGreedy, Scheme::UBinomial] {
                let o = avg_latency(&nets, &cfg, other, degree, 128);
                assert!(
                    tree < o,
                    "R={r} degree={degree}: tree {tree:.0} not < {other} {o:.0}"
                );
            }
        }
    }
}

/// §4.2.1: "As the ratio R increases (O_ni shrinks relative to O_h), the
/// NI-based multicasting scheme begins to outperform the path-based
/// scheme."
#[test]
fn claim_r_crossover_between_ni_and_path() {
    let nets = nets(5, 8);
    let degree = 16;
    let gap = |r: f64| {
        let cfg = SimConfig::paper_default().with_r(r);
        avg_latency(&nets, &cfg, Scheme::NiFpfs, degree, 128)
            - avg_latency(&nets, &cfg, Scheme::PathLessGreedy, degree, 128)
    };
    // The NI-based scheme's disadvantage shrinks monotonically with R and
    // flips to an advantage by R = 4.
    let g_half = gap(0.5);
    let g_two = gap(2.0);
    let g_four = gap(4.0);
    assert!(g_half > g_four, "gap did not shrink: {g_half:.0} -> {g_four:.0}");
    assert!(g_two > g_four);
    assert!(g_four < 0.0, "NI-based should win at R=4 (gap {g_four:.0})");
}

/// §4.2.2: increasing the number of switches at fixed system size
/// degrades the path-based scheme (more worms, more phases) while the
/// NI-based and tree-based schemes remain largely unaffected.
#[test]
fn claim_more_switches_hurt_path_based_only() {
    let cfg = SimConfig::paper_default();
    let n8 = nets(4, 8);
    let n32 = nets(4, 32);
    let degree = 16;
    let path_8 = avg_latency(&n8, &cfg, Scheme::PathLessGreedy, degree, 128);
    let path_32 = avg_latency(&n32, &cfg, Scheme::PathLessGreedy, degree, 128);
    assert!(
        path_32 > 1.25 * path_8,
        "path-based should degrade noticeably: {path_8:.0} -> {path_32:.0}"
    );
    for stable in [Scheme::NiFpfs, Scheme::TreeWorm] {
        let a = avg_latency(&n8, &cfg, stable, degree, 128);
        let b = avg_latency(&n32, &cfg, stable, degree, 128);
        assert!(
            b < 1.25 * a,
            "{stable} should be largely unaffected: {a:.0} -> {b:.0}"
        );
    }
}

/// §4.2.3: message length favors the NI-based scheme over the path-based
/// scheme — FPFS forwards packet-by-packet while every path-based phase
/// store-and-forwards the whole message. In the paper the curves cross
/// beyond "2⟨…⟩" flits (digits lost to OCR); our MDP planner is a
/// DP-optimal reconstruction and therefore somewhat stronger than the
/// original heuristic, which pushes the crossover to ≈2× longer messages
/// (see EXPERIMENTS.md). The robust, parameter-independent part of the
/// claim is the *direction*: the NI:path latency ratio shrinks
/// monotonically toward (and below) parity as packets are added.
#[test]
fn claim_long_messages_favor_fpfs_over_path() {
    let cfg = SimConfig::paper_default();
    let nets = nets(5, 8);
    let degree = 16;
    let ratio = |msg: u32| {
        avg_latency(&nets, &cfg, Scheme::NiFpfs, degree, msg)
            / avg_latency(&nets, &cfg, Scheme::PathLessGreedy, degree, msg)
    };
    let r8 = ratio(1024); // 8 packets
    let r32 = ratio(4096); // 32 packets
    assert!(r32 < r8, "NI:path ratio should shrink with length: {r8:.2} -> {r32:.2}");
    assert!(
        r32 < 1.2,
        "at 32 packets the two schemes should be at or past parity (ratio {r32:.2})"
    );
    // And the advantage must come from pipelining: the per-flit cost of
    // NI-based drops as messages grow.
    let ni_long = avg_latency(&nets, &cfg, Scheme::NiFpfs, degree, 2048);
    let ni_short = avg_latency(&nets, &cfg, Scheme::NiFpfs, degree, 128);
    assert!(ni_long / 16.0 < ni_short, "FPFS should amortize per-packet");
}

/// §3.1: the software binomial baseline needs ⌈log₂(d+1)⌉ communication
/// steps, which its latency reflects (roughly linear in the step count,
/// each step ≈ one full send+receive overhead chain).
#[test]
fn claim_binomial_step_scaling() {
    let cfg = SimConfig::paper_default();
    let nets = nets(3, 8);
    let l3 = avg_latency(&nets, &cfg, Scheme::UBinomial, 7, 128); // 3 steps
    let l5 = avg_latency(&nets, &cfg, Scheme::UBinomial, 31, 128); // 5 steps
    let ratio = l5 / l3;
    assert!(
        (1.3..2.3).contains(&ratio),
        "5-step vs 3-step binomial ratio {ratio:.2} outside plausible band"
    );
}

/// Load behavior (§4.3): at default parameters the tree-based scheme
/// sustains a strictly higher multicast load than both other schemes.
#[test]
fn claim_tree_based_saturates_last() {
    let cfg = SimConfig::paper_default();
    let net = Network::analyze(
        gen::generate(&RandomTopologyConfig::paper_default(0)).unwrap(),
    )
    .unwrap();
    // A load that saturates NI-based and path-based but not tree-based.
    let mut lc = LoadConfig::paper_default(8, 0.2);
    lc.warmup = 30_000;
    lc.measure = 200_000;
    lc.drain = 100_000;
    let tree = run_load(&net, &cfg, Scheme::TreeWorm, &lc).unwrap();
    let ni = run_load(&net, &cfg, Scheme::NiFpfs, &lc).unwrap();
    assert!(!tree.saturated, "{tree:?}");
    assert!(ni.saturated, "{ni:?}");
}
