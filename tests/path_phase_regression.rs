//! Regression tests for a deadlock class found by the Fig. 7 sweep:
//! a path-based worm whose planned route visits an intermediate stop
//! during its up* prefix could, under adaptive routing, reach that stop
//! via a minimal route that had already turned downward — stranding the
//! worm with no legal continuation (up-after-down is illegal). The fix
//! marks such stops `up_phase` and restricts their legs to up-only
//! routes.

use irrnet::prelude::*;

#[test]
fn path_plans_mark_up_prefix_stops() {
    // On sparse many-switch topologies, plans regularly climb through
    // host-bearing switches; those stops must carry the up_phase flag and
    // every up_phase stop must precede every non-up_phase stop (phases
    // are monotone along a legal route).
    let mut saw_up_phase_stop = false;
    for seed in 0..10u64 {
        let net = Network::analyze(
            gen::generate(&RandomTopologyConfig::with_switches(seed, 16)).unwrap(),
        )
        .unwrap();
        for source in [NodeId(0), NodeId(7)] {
            let mut dests = NodeMask::all(32);
            dests.remove(source);
            let plan = irrnet::mcast::plan_paths(
                &net,
                source,
                dests,
                irrnet::mcast::PathVariant::LessGreedy,
            );
            for w in &plan.worms {
                let mut seen_down = false;
                for stop in &w.stops {
                    if stop.up_phase {
                        saw_up_phase_stop = true;
                        assert!(!seen_down, "up-phase stop after a down-phase stop");
                    } else {
                        seen_down = true;
                    }
                }
            }
        }
    }
    assert!(saw_up_phase_stop, "test never exercised an up-phase stop");
}

#[test]
fn sixteen_and_thirtytwo_switch_sweeps_complete() {
    // The original failure: path-lg multicasts on 16-switch topologies
    // deadlocked mid-sweep (watchdog at 2M cycles). Run the same class of
    // workloads to completion.
    let cfg = SimConfig::paper_default();
    for switches in [16usize, 32] {
        for seed in 0..10u64 {
            let net = Network::analyze(
                gen::generate(&RandomTopologyConfig::with_switches(seed, switches)).unwrap(),
            )
            .unwrap();
            for degree in [8usize, 24, 31] {
                let lat = mean_single_latency(
                    &net,
                    &cfg,
                    Scheme::PathLessGreedy,
                    degree,
                    128,
                    3,
                    0xBEEF ^ seed,
                )
                .unwrap_or_else(|e| panic!("switches={switches} seed={seed} degree={degree}: {e}"));
                assert!(lat > 0.0);
            }
        }
    }
}

#[test]
fn hybrid_path_scheme_also_survives_sparse_topologies() {
    let cfg = SimConfig::paper_default();
    for seed in 0..6u64 {
        let net = Network::analyze(
            gen::generate(&RandomTopologyConfig::with_switches(seed, 32)).unwrap(),
        )
        .unwrap();
        let lat =
            mean_single_latency(&net, &cfg, Scheme::PathLgNi, 24, 256, 2, seed).unwrap();
        assert!(lat > 0.0);
    }
}
