//! Cross-crate randomized tests: on arbitrary feasible topologies, with
//! arbitrary destination sets and message lengths, every scheme delivers
//! the message to every destination exactly once — the fundamental
//! multicast correctness invariant — and the flit accounting balances.
//!
//! Deterministic port of the original proptest suite (now in
//! `extdeps/tests/`): cases are drawn from the workspace PRNG with a
//! fixed master seed, so the run is offline and replays identically.

use irrnet::prelude::*;
use irrnet::topology::rng::SmallRng;
use irrnet::topology::ExtraLinks;
use std::sync::Arc;

struct Case {
    topo: RandomTopologyConfig,
    source: usize,
    dest_bits: u64,
    message_flits: u32,
    scheme: Scheme,
}

/// A feasible random case: ports always fit the spanning tree plus the
/// sampled host count, and the source is a valid host index.
fn sample_case(rng: &mut SmallRng) -> Case {
    let switches = rng.gen_range(2..=8usize);
    let extra = rng.gen_range(0.0..1.0);
    let seed = rng.next_u64();
    let tree_ports = 2 * (switches - 1);
    let max_hosts = (switches * 8 - tree_ports).min(48);
    let hosts = rng.gen_range(3..=max_hosts);
    Case {
        topo: RandomTopologyConfig {
            num_switches: switches,
            ports_per_switch: 8,
            num_hosts: hosts,
            extra_links: ExtraLinks::Fraction(extra),
            seed,
        },
        source: rng.gen_range(0..hosts),
        dest_bits: rng.next_u64() | 1,
        message_flits: [16u32, 128, 300][rng.gen_range(0..3usize)],
        scheme: Scheme::all()[rng.gen_range(0..Scheme::all().len())],
    }
}

#[test]
fn exactly_once_delivery() {
    let mut rng = SmallRng::seed_from_u64(0x5EED5);
    for _ in 0..48 {
        let case = sample_case(&mut rng);
        let net =
            Network::analyze(irrnet::topology::gen::generate(&case.topo).unwrap()).unwrap();
        let n = net.topo.num_nodes();
        let source = NodeId(case.source as u16);
        // Carve a destination set out of the random bits.
        let mut dests = NodeMask::EMPTY;
        for i in 0..n {
            if i != source.idx() && (case.dest_bits >> (i % 64)) & 1 == 1 {
                dests.insert(NodeId(i as u16));
            }
        }
        if dests.is_empty() {
            // Ensure at least one destination.
            let d = (source.idx() + 1) % n;
            dests.insert(NodeId(d as u16));
        }
        let cfg = SimConfig::paper_default();
        let ctx = format!("{:?} source {} scheme {:?}", case.topo, case.source, case.scheme);

        let plan =
            plan_multicast(&net, &cfg, case.scheme, source, dests.clone(), case.message_flits);
        let mut proto = SchemeProtocol::new();
        proto.add(McastId(0), Arc::new(plan));
        let mut sim = Simulator::new(&net, cfg.clone(), proto).unwrap();
        sim.schedule_multicast(0, McastId(0), dests.clone(), case.message_flits);
        sim.run_to_completion(200_000_000).expect("completes without deadlock");
        let stats = sim.stats();

        // Exactly-once delivery to exactly the destination set (the
        // engine debug-asserts duplicates and wrong-destination
        // deliveries; here we assert the release-visible outcome).
        let rec = &stats.mcasts[&McastId(0)];
        assert_eq!(rec.deliveries.len(), dests.len(), "{ctx}");
        for d in dests.iter() {
            assert!(rec.deliveries.contains_key(&d), "missing delivery to {d} — {ctx}");
        }

        // Flit conservation: everything injected is eventually ejected or
        // replicated; ejected >= injected for multicast (replication adds
        // copies), and the packet count at NIs matches the deliveries
        // times packets (plus FPFS forwarding receptions).
        let pkts = cfg.packets_for(case.message_flits) as u64;
        assert_eq!(stats.net.packets_received, dests.len() as u64 * pkts, "{ctx}");
        assert!(stats.net.injected_flits > 0, "{ctx}");
    }
}
